package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, 2, 6}, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.xs); !almost(got, tc.want, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of singleton = %v", got)
	}
	// Known sample: {2,4,4,4,5,5,7,9} has sample std ≈ 2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almost(got, 2.13809, 1e-4) {
		t.Errorf("StdDev = %v, want ≈2.138", got)
	}
}

func TestSummarizeConstantSample(t *testing.T) {
	s := Summarize([]float64{4, 4, 4, 4})
	if s.Mean != 4 || s.Std != 0 || s.CI95 != 0 || s.N != 4 {
		t.Errorf("constant sample summary = %+v", s)
	}
}

func TestSummarizeKnownCI(t *testing.T) {
	// n=5, std=1 → CI half-width = t(4) / sqrt(5) = 2.776/2.236 ≈ 1.2414.
	xs := []float64{-1, -0.5, 0, 0.5, 1}
	s := Summarize(xs)
	wantStd := StdDev(xs)
	want := 2.776 * wantStd / math.Sqrt(5)
	if !almost(s.CI95, want, 1e-9) {
		t.Errorf("CI95 = %v, want %v", s.CI95, want)
	}
}

func TestTCriticalMonotoneTo196(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 300; df++ {
		c := tCritical95(df)
		if c > prev+1e-9 {
			t.Fatalf("tCritical95 not non-increasing at df=%d: %v > %v", df, c, prev)
		}
		prev = c
	}
	if got := tCritical95(10000); got != 1.96 {
		t.Errorf("large-df critical = %v, want 1.96", got)
	}
	if got := tCritical95(0); got != 0 {
		t.Errorf("df=0 critical = %v, want 0", got)
	}
}

func TestCIShrinksWithSampleSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	}
	small := Summarize(sample(10))
	large := Summarize(sample(1000))
	if large.CI95 >= small.CI95 {
		t.Errorf("CI did not shrink: n=10 → %v, n=1000 → %v", small.CI95, large.CI95)
	}
}

func TestWilson95Golden(t *testing.T) {
	// Reference values computed from the Wilson score formula with
	// z = 1.96 (textbook tables agree to 4 decimals).
	cases := []struct {
		k, n   int
		lo, hi float64
	}{
		{8, 10, 0.4902, 0.9433},
		{45, 50, 0.7864, 0.9565},
		{0, 20, 0.0000, 0.1611},
		{20, 20, 0.8389, 1.0000},
		{25, 50, 0.3664, 0.6336},
	}
	for _, c := range cases {
		lo, hi := Wilson95(c.k, c.n)
		if !almost(lo, c.lo, 5e-4) || !almost(hi, c.hi, 5e-4) {
			t.Errorf("Wilson95(%d, %d) = (%.4f, %.4f), want (%.4f, %.4f)",
				c.k, c.n, lo, hi, c.lo, c.hi)
		}
	}
}

func TestWilson95Properties(t *testing.T) {
	if lo, hi := Wilson95(3, 0); lo != 0 || hi != 0 {
		t.Errorf("n=0 interval = (%v, %v)", lo, hi)
	}
	for _, n := range []int{1, 5, 30, 200} {
		for k := 0; k <= n; k++ {
			lo, hi := Wilson95(k, n)
			p := float64(k) / float64(n)
			if lo < 0 || hi > 1 || lo > hi {
				t.Fatalf("Wilson95(%d,%d) = (%v,%v) leaves [0,1]", k, n, lo, hi)
			}
			if p < lo-1e-12 || p > hi+1e-12 {
				t.Fatalf("Wilson95(%d,%d) = (%v,%v) excludes p̂=%v", k, n, lo, hi, p)
			}
		}
	}
}

func TestCICoverage(t *testing.T) {
	// Statistical sanity check: with normal data, the 95% CI should cover
	// the true mean in roughly 95% of repetitions. Tolerate 88-100%.
	rng := rand.New(rand.NewSource(7))
	covered := 0
	const reps = 400
	for r := 0; r < reps; r++ {
		xs := make([]float64, 12)
		for i := range xs {
			xs[i] = 5 + 2*rng.NormFloat64()
		}
		s := Summarize(xs)
		if math.Abs(s.Mean-5) <= s.CI95 {
			covered++
		}
	}
	if covered < int(0.88*reps) {
		t.Errorf("CI covered true mean in only %d/%d repetitions", covered, reps)
	}
}
