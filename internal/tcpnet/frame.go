package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// DialPeer dials addr with cfg-style retry semantics: attempts are
// retried on the retry backoff (≤ 0 means the 50ms default) until one
// succeeds or deadline passes, and the last dial error is returned on
// timeout. It is the dial loop node processes use to reach neighbors
// before StartAt, exported for the distributed experiment plane
// (internal/exp/dist), whose workers reconnect to a coordinator the
// same way.
func DialPeer(addr string, retry time.Duration, deadline time.Time) (net.Conn, error) {
	if retry <= 0 {
		retry = 50 * time.Millisecond
	}
	for {
		c, err := net.DialTimeout("tcp", addr, retry*4)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcpnet: dial %s: %w", addr, err)
		}
		time.Sleep(retry)
	}
}

// WriteFrame sends one [len:4][payload] frame — the generic framing
// under every nectar TCP protocol (the node plane prefixes it with a
// sender ID; the experiment plane uses it bare, with the sender implied
// by the connection). The write is a single Write call, so concurrent
// writers need external serialization.
func WriteFrame(c net.Conn, payload []byte) error {
	buf := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	_, err := c.Write(append(buf, payload...))
	return err
}

// ReadFrame reads one [len:4][payload] frame. max bounds the payload
// size (≤ 0 means the package's 1 MiB default); an oversized length is a
// protocol violation and returns an error without consuming the payload,
// after which the connection should be dropped.
func ReadFrame(c net.Conn, max int) ([]byte, error) {
	if max <= 0 {
		max = maxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > uint32(max) {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds the %d-byte bound", size, max)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(c, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
