// Package tcpnet runs rounds.Protocol state machines over real TCP
// sockets, mirroring the paper's prototype, which executed on a real
// network stack (salticidae) rather than in a simulator.
//
// The synchronous model of §II is realized with wall-clock rounds: all
// processes agree on a start instant and a round duration ΔT chosen so
// that messages sent at the beginning of a round are delivered before it
// ends. One TCP connection exists per communication-graph edge; the
// lower-ID endpoint listens, the higher-ID endpoint dials, and a 4-byte ID
// handshake authenticates the connection's edge. Frames are
// length-prefixed, matching the byte accounting of the in-memory engine
// (rounds.DefaultMsgOverhead).
//
// With Config.Reconnect the node survives peer connection failures
// instead of aborting: sends to a downed neighbor are dropped and
// counted, lower-ID neighbors are redialed in the background, and the
// listener keeps accepting re-handshakes from higher-ID neighbors — the
// long-running-service posture of cmd/nectar-node, surfaced through the
// nectar_node_* metrics (DESIGN.md §12).
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/nectar-repro/nectar/internal/ids"
	"github.com/nectar-repro/nectar/internal/obs"
	"github.com/nectar-repro/nectar/internal/rounds"
)

// maxFrame bounds incoming frame sizes (1 MiB is far above any NECTAR
// message at the paper's scales).
const maxFrame = 1 << 20

// Config describes one process of a TCP deployment.
type Config struct {
	// Me is the local node's identity.
	Me ids.NodeID
	// Addrs maps every node ID to its "host:port" listen address. Only
	// neighbors are contacted.
	Addrs map[ids.NodeID]string
	// Neighbors is the local neighborhood Γ(Me).
	Neighbors []ids.NodeID
	// Listener optionally supplies a pre-bound listener for Addrs[Me]
	// (tests use this to allocate ephemeral ports race-free).
	Listener net.Listener
	// StartAt is the agreed instant of round 1's beginning. All processes
	// must use the same value; it must be far enough in the future for
	// connection establishment to finish.
	StartAt time.Time
	// RoundDuration is ΔT. It must comfortably exceed the network round
	// trip; 200ms is generous on localhost.
	RoundDuration time.Duration
	// Rounds is the number of synchronous rounds to execute.
	Rounds int
	// DialRetry is the backoff between connection attempts (default
	// 50ms).
	DialRetry time.Duration
	// Reconnect keeps the node alive through mid-run peer failures:
	// sends to a downed neighbor are dropped and counted
	// (Stats.SendsDropped) instead of aborting the run, lower-ID
	// neighbors are redialed in the background, and the listener keeps
	// accepting re-handshakes from higher-ID neighbors for the whole
	// run. Off by default — a batch deployment's fail-fast abort is the
	// legacy behavior.
	Reconnect bool
	// Metrics, when non-nil, receives live nectar_node_* counters and
	// gauges (rounds completed, traffic, peer downs/reconnects) — the
	// scrape surface behind cmd/nectar-node's /metrics endpoint.
	Metrics *obs.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Stats meters the local node's traffic.
type Stats struct {
	BytesSent     int64
	MsgsSent      int64
	MsgsDelivered int64
	// LateMsgs counts frames that arrived after their round window closed
	// and were delivered in a later round (the protocol layer discards
	// them if stale).
	LateMsgs int64
	// PeerDowns / PeerReconnects / SendsDropped count connection losses,
	// successful re-establishments, and sends dropped for lack of a live
	// connection. Always 0 without Config.Reconnect (the first failure
	// aborts the run instead).
	PeerDowns      int64
	PeerReconnects int64
	SendsDropped   int64
}

// frame is one received message, stamped with its arrival instant so the
// round loop can map it onto the shared round grid (messages read from
// the channel a few ms after a boundary may belong to either side of it).
type frame struct {
	from ids.NodeID
	data []byte
	at   time.Time
}

// Run executes proto over TCP for cfg.Rounds wall-clock rounds and
// returns the traffic stats. It blocks until the run completes.
func Run(cfg Config, proto rounds.Protocol) (*Stats, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	conns, ln, err := connect(cfg)
	if ln != nil {
		defer ln.Close()
	}
	if err != nil {
		closeAll(conns)
		return nil, err
	}

	stats := &Stats{}
	pt := newPeerTable(&cfg, stats)
	for id, c := range conns {
		pt.adopt(id, c, false)
	}
	if cfg.Reconnect && ln != nil {
		// Higher-ID neighbors dial us; keep accepting their
		// re-handshakes for the whole run.
		pt.aux.Add(1)
		go pt.acceptLoop(ln)
	}

	err = runRounds(cfg, proto, pt, stats)

	// Unblock every reader, redialer, and the accept loop, then wait for
	// them before reading the final stats.
	pt.shutdown()
	if ln != nil {
		ln.Close()
	}
	pt.aux.Wait()
	pt.readers.Wait()
	return stats, err
}

func validate(cfg *Config) error {
	if cfg.Rounds <= 0 {
		return fmt.Errorf("tcpnet: Rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.RoundDuration <= 0 {
		return fmt.Errorf("tcpnet: RoundDuration must be positive")
	}
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	for _, nb := range cfg.Neighbors {
		if nb == cfg.Me {
			return fmt.Errorf("tcpnet: node %v lists itself as neighbor", cfg.Me)
		}
		if _, ok := cfg.Addrs[nb]; !ok {
			return fmt.Errorf("tcpnet: no address for neighbor %v", nb)
		}
	}
	return nil
}

// connect establishes one connection per incident edge: dial neighbors
// with smaller IDs, accept from neighbors with larger IDs.
func connect(cfg Config) (map[ids.NodeID]net.Conn, net.Listener, error) {
	conns := make(map[ids.NodeID]net.Conn, len(cfg.Neighbors))
	expectAccept := 0
	for _, nb := range cfg.Neighbors {
		if nb > cfg.Me {
			expectAccept++
		}
	}
	ln := cfg.Listener
	if ln == nil && expectAccept > 0 {
		addr, ok := cfg.Addrs[cfg.Me]
		if !ok {
			return nil, nil, fmt.Errorf("tcpnet: no listen address for %v", cfg.Me)
		}
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
		}
	}

	deadline := cfg.StartAt
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup

	// Accept loop for higher-ID neighbors.
	if expectAccept > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			accepted := 0
			for accepted < expectAccept {
				if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
					_ = d.SetDeadline(deadline)
				}
				c, err := ln.Accept()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tcpnet: accept: %w", err)
					}
					mu.Unlock()
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(c, hello[:]); err != nil {
					c.Close()
					continue
				}
				peer := ids.NodeID(binary.BigEndian.Uint32(hello[:]))
				if !isNeighbor(cfg.Neighbors, peer) || peer <= cfg.Me {
					cfg.Logf("rejecting connection claiming to be %v", peer)
					c.Close()
					continue
				}
				mu.Lock()
				if _, dup := conns[peer]; dup {
					mu.Unlock()
					c.Close()
					continue
				}
				conns[peer] = c
				mu.Unlock()
				accepted++
			}
			// Clear the handshake deadline: the run's accept loop (under
			// Reconnect) must block indefinitely, not inherit StartAt.
			if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
				_ = d.SetDeadline(time.Time{})
			}
		}()
	}

	// Dial lower-ID neighbors, retrying until the start instant.
	for _, nb := range cfg.Neighbors {
		if nb >= cfg.Me {
			continue
		}
		wg.Add(1)
		go func(nb ids.NodeID) {
			defer wg.Done()
			addr := cfg.Addrs[nb]
			for {
				c, err := net.DialTimeout("tcp", addr, cfg.DialRetry*4)
				if err == nil {
					var hello [4]byte
					binary.BigEndian.PutUint32(hello[:], uint32(cfg.Me))
					if _, err := c.Write(hello[:]); err == nil {
						mu.Lock()
						conns[nb] = c
						mu.Unlock()
						return
					}
					c.Close()
				}
				if time.Now().After(deadline) {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tcpnet: dialing %v at %s: %w", nb, addr, err)
					}
					mu.Unlock()
					return
				}
				time.Sleep(cfg.DialRetry)
			}
		}(nb)
	}
	wg.Wait()
	if firstErr != nil {
		return conns, ln, firstErr
	}
	if len(conns) != len(cfg.Neighbors) {
		return conns, ln, fmt.Errorf("tcpnet: %d of %d neighbor connections established",
			len(conns), len(cfg.Neighbors))
	}
	cfg.Logf("node %v connected to %d neighbors", cfg.Me, len(conns))
	return conns, ln, nil
}

// peerTable tracks the live connection per neighbor across failures and
// reconnects, publishing transitions to the Stats and (when configured)
// the metrics registry.
type peerTable struct {
	cfg      *Config
	stats    *Stats
	incoming chan frame

	mu     sync.Mutex
	conns  map[ids.NodeID]net.Conn
	closed bool

	done    chan struct{}
	readers sync.WaitGroup // one readLoop per live connection
	aux     sync.WaitGroup // accept loop + redialers

	// Live instruments; all nil without Config.Metrics.
	connected                *obs.Gauge
	downC, reconnC, droppedC *obs.Counter
	roundsC, bytesC, sentC   *obs.Counter
	deliveredC, lateC        *obs.Counter
}

// Registry instrument names the peer table publishes. Registration is
// idempotent, so PeerHealth can resolve the same counters from the
// admin side regardless of whether the peer table exists yet.
const (
	metricPeersConnected = "nectar_node_peers_connected"
	metricPeerDown       = "nectar_node_peer_down_total"
	metricPeerReconnect  = "nectar_node_peer_reconnect_total"
	metricSendsDropped   = "nectar_node_sends_dropped_total"
	metricLateMsgs       = "nectar_node_late_msgs_total"

	helpPeersConnected = "Neighbor connections currently live."
	helpPeerDown       = "Neighbor connections lost mid-run."
	helpPeerReconnect  = "Neighbor connections re-established after a loss."
	helpSendsDropped   = "Sends dropped for lack of a live neighbor connection."
	helpLateMsgs       = "Frames that arrived after their round window closed."
)

func newPeerTable(cfg *Config, stats *Stats) *peerTable {
	pt := &peerTable{
		cfg:      cfg,
		stats:    stats,
		incoming: make(chan frame, 1024),
		conns:    make(map[ids.NodeID]net.Conn, len(cfg.Neighbors)),
		done:     make(chan struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		pt.connected = reg.Gauge(metricPeersConnected, helpPeersConnected)
		pt.downC = reg.Counter(metricPeerDown, helpPeerDown)
		pt.reconnC = reg.Counter(metricPeerReconnect, helpPeerReconnect)
		pt.droppedC = reg.Counter(metricSendsDropped, helpSendsDropped)
		pt.lateC = reg.Counter(metricLateMsgs, helpLateMsgs)
		pt.roundsC = reg.Counter("nectar_node_rounds_completed_total", "Wall-clock rounds completed.")
		pt.bytesC = reg.Counter("nectar_node_bytes_sent_total", "Bytes sent on the wire, payload plus framing.")
		pt.sentC = reg.Counter("nectar_node_msgs_sent_total", "Messages sent to neighbors.")
		pt.deliveredC = reg.Counter("nectar_node_msgs_delivered_total", "Messages delivered to the local protocol.")
	}
	return pt
}

// PeerHealth reads the peer-table condition out of the registry as
// health-detail attrs: live connections, losses, re-establishments,
// dropped sends, and late frames — the state node-smoke asserts on to
// check partition handling. Counter registration is idempotent, so the
// admin health endpoint can call this before, during, or after the run
// and observe the same instruments the peer table updates.
func PeerHealth(reg *obs.Registry) []obs.Attr {
	return []obs.Attr{
		{K: "peers_connected", V: reg.Gauge(metricPeersConnected, helpPeersConnected).Value()},
		{K: "peer_downs", V: reg.Counter(metricPeerDown, helpPeerDown).Value()},
		{K: "peer_reconnects", V: reg.Counter(metricPeerReconnect, helpPeerReconnect).Value()},
		{K: "sends_dropped", V: reg.Counter(metricSendsDropped, helpSendsDropped).Value()},
		{K: "late_msgs", V: reg.Counter(metricLateMsgs, helpLateMsgs).Value()},
	}
}

// get returns the peer's live connection, or nil.
func (pt *peerTable) get(id ids.NodeID) net.Conn {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.conns[id]
}

// adopt installs a connection for peer and starts its read loop. With
// reconnect=true it replaces (and closes) any previous connection and
// counts a re-establishment; after shutdown the connection is closed and
// discarded.
func (pt *peerTable) adopt(peer ids.NodeID, c net.Conn, reconnect bool) {
	pt.mu.Lock()
	if pt.closed {
		pt.mu.Unlock()
		c.Close()
		return
	}
	if old, ok := pt.conns[peer]; ok {
		old.Close()
	} else if pt.connected != nil {
		pt.connected.Inc()
	}
	pt.conns[peer] = c
	if reconnect {
		pt.stats.PeerReconnects++
		if pt.reconnC != nil {
			pt.reconnC.Inc()
		}
		pt.cfg.Logf("node %v reconnected to %v", pt.cfg.Me, peer)
	}
	pt.mu.Unlock()
	pt.readers.Add(1)
	go func() {
		defer pt.readers.Done()
		readLoop(peer, c, pt.incoming)
		pt.lost(peer, c)
	}()
}

// lost records that peer's connection c died. Idempotent per connection:
// only the current table entry counts, so a write failure and the read
// loop noticing the same broken socket produce one transition. Under
// Reconnect, lower-ID peers (which this node dials) get a background
// redialer; higher-ID peers redial us through the accept loop.
func (pt *peerTable) lost(peer ids.NodeID, c net.Conn) {
	if !pt.cfg.Reconnect {
		// Legacy mode: leave the dead connection in the table so the
		// next write to it fails and aborts the run (fail-fast).
		return
	}
	c.Close()
	pt.mu.Lock()
	if pt.closed || pt.conns[peer] != c {
		pt.mu.Unlock()
		return
	}
	delete(pt.conns, peer)
	pt.stats.PeerDowns++
	if pt.connected != nil {
		pt.connected.Dec()
		pt.downC.Inc()
	}
	redial := pt.cfg.Reconnect && peer < pt.cfg.Me
	pt.mu.Unlock()
	pt.cfg.Logf("node %v lost connection to %v", pt.cfg.Me, peer)
	if redial {
		pt.aux.Add(1)
		go pt.redial(peer)
	}
}

// redial re-establishes the outbound connection to a lower-ID peer,
// retrying on cfg.DialRetry until shutdown.
func (pt *peerTable) redial(peer ids.NodeID) {
	defer pt.aux.Done()
	addr := pt.cfg.Addrs[peer]
	for {
		select {
		case <-pt.done:
			return
		default:
		}
		c, err := net.DialTimeout("tcp", addr, pt.cfg.DialRetry*4)
		if err == nil {
			var hello [4]byte
			binary.BigEndian.PutUint32(hello[:], uint32(pt.cfg.Me))
			if _, err := c.Write(hello[:]); err == nil {
				pt.adopt(peer, c, true)
				return
			}
			c.Close()
		}
		select {
		case <-pt.done:
			return
		case <-time.After(pt.cfg.DialRetry):
		}
	}
}

// acceptLoop accepts re-handshakes from higher-ID neighbors for the
// whole run (Reconnect only). It exits when the listener closes.
func (pt *peerTable) acceptLoop(ln net.Listener) {
	defer pt.aux.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		var hello [4]byte
		if _, err := io.ReadFull(c, hello[:]); err != nil {
			c.Close()
			continue
		}
		peer := ids.NodeID(binary.BigEndian.Uint32(hello[:]))
		if !isNeighbor(pt.cfg.Neighbors, peer) || peer <= pt.cfg.Me {
			pt.cfg.Logf("rejecting connection claiming to be %v", peer)
			c.Close()
			continue
		}
		pt.adopt(peer, c, true)
	}
}

// dropSend counts one message dropped for lack of a live connection.
func (pt *peerTable) dropSend() {
	pt.stats.SendsDropped++
	if pt.droppedC != nil {
		pt.droppedC.Inc()
	}
}

// shutdown closes every live connection and stops redialers; subsequent
// adopts are rejected.
func (pt *peerTable) shutdown() {
	pt.mu.Lock()
	pt.closed = true
	close(pt.done)
	for _, c := range pt.conns {
		c.Close()
	}
	pt.mu.Unlock()
}

// runRounds drives the wall-clock round loop.
func runRounds(cfg Config, proto rounds.Protocol, pt *peerTable, stats *Stats) error {
	// Wait for the agreed start instant.
	if d := time.Until(cfg.StartAt); d > 0 {
		time.Sleep(d)
	}
	// roundOf maps an arrival instant onto the shared round grid. All
	// processes agree on StartAt, so the grid is the one cross-process
	// ground truth; the local loop variable can lag it by scheduler
	// jitter at each boundary.
	roundOf := func(t time.Time) int {
		if !t.After(cfg.StartAt) {
			return 1
		}
		return int(t.Sub(cfg.StartAt)/cfg.RoundDuration) + 1
	}
	// carry holds frames that arrived after the local drain's round
	// window but belong to the next round (a peer's Emit racing this
	// node's timer): delivering them under the old label would make the
	// protocol reject them (signature chains are length-checked per
	// round), so they wait for their own round.
	var carry []frame
	for r := 1; r <= cfg.Rounds; r++ {
		roundEnd := cfg.StartAt.Add(time.Duration(r) * cfg.RoundDuration)
		for _, s := range proto.Emit(r) {
			c := pt.get(s.To)
			if c == nil {
				if cfg.Reconnect && isNeighbor(cfg.Neighbors, s.To) {
					// Downed neighbor: the message is lost, the run
					// survives. Without Reconnect a missing entry only
					// ever means "not an edge" — the engine-equivalent
					// silent drop.
					pt.dropSend()
				}
				continue
			}
			if err := writeFrame(c, cfg.Me, s.Data); err != nil {
				if !cfg.Reconnect {
					return fmt.Errorf("tcpnet: round %d send to %v: %w", r, s.To, err)
				}
				pt.dropSend()
				pt.lost(s.To, c)
				continue
			}
			stats.BytesSent += int64(len(s.Data) + rounds.DefaultMsgOverhead)
			stats.MsgsSent++
			if pt.bytesC != nil {
				pt.bytesC.Add(int64(len(s.Data) + rounds.DefaultMsgOverhead))
				pt.sentC.Inc()
			}
		}
		deliver := func(round int, f frame) {
			stats.MsgsDelivered++
			if pt.deliveredC != nil {
				pt.deliveredC.Inc()
			}
			proto.Deliver(round, f.from, f.data)
		}
		// Frames held over from the previous drain belong to this round;
		// deliver them now that Emit(r) has run.
		for _, f := range carry {
			deliver(roundOf(f.at), f)
		}
		carry = carry[:0]
		// Deliver everything that arrives within the round window.
		timer := time.NewTimer(time.Until(roundEnd))
	drain:
		for {
			select {
			case f := <-pt.incoming:
				fr := roundOf(f.at)
				if fr > r {
					carry = append(carry, f)
					continue
				}
				if fr < r {
					// Arrived after its window closed; the protocol layer
					// discards it if stale.
					stats.LateMsgs++
					if pt.lateC != nil {
						pt.lateC.Inc()
					}
				}
				deliver(r, f)
			case <-timer.C:
				break drain
			}
		}
		timer.Stop()
		if pt.roundsC != nil {
			pt.roundsC.Inc()
		}
		cfg.Logf("node %v finished round %d/%d", cfg.Me, r, cfg.Rounds)
	}
	return nil
}

// writeFrame sends [from:4][len:4][payload].
func writeFrame(c net.Conn, from ids.NodeID, data []byte) error {
	hdr := make([]byte, 8, 8+len(data))
	binary.BigEndian.PutUint32(hdr[:4], uint32(from))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(data)))
	_, err := c.Write(append(hdr, data...))
	return err
}

// readLoop parses frames from one connection into the shared channel. The
// sender ID in the frame header is ignored in favor of the authenticated
// connection identity: a Byzantine neighbor cannot spoof a third party.
func readLoop(peer ids.NodeID, c net.Conn, out chan<- frame) {
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[4:8])
		if size > maxFrame {
			return // protocol violation: drop the connection
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(c, data); err != nil {
			return
		}
		out <- frame{from: peer, data: data, at: time.Now()}
	}
}

func isNeighbor(neighbors []ids.NodeID, id ids.NodeID) bool {
	for _, nb := range neighbors {
		if nb == id {
			return true
		}
	}
	return false
}

func closeAll(conns map[ids.NodeID]net.Conn) {
	for _, c := range conns {
		c.Close()
	}
}

// ErrTooFewRounds is returned by helpers when a deployment would run fewer
// rounds than NECTAR needs (n-1).
var ErrTooFewRounds = errors.New("tcpnet: rounds below the protocol horizon")
