// Package tcpnet runs rounds.Protocol state machines over real TCP
// sockets, mirroring the paper's prototype, which executed on a real
// network stack (salticidae) rather than in a simulator.
//
// The synchronous model of §II is realized with wall-clock rounds: all
// processes agree on a start instant and a round duration ΔT chosen so
// that messages sent at the beginning of a round are delivered before it
// ends. One TCP connection exists per communication-graph edge; the
// lower-ID endpoint listens, the higher-ID endpoint dials, and a 4-byte ID
// handshake authenticates the connection's edge. Frames are
// length-prefixed, matching the byte accounting of the in-memory engine
// (rounds.DefaultMsgOverhead).
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/nectar-repro/nectar/internal/ids"
	"github.com/nectar-repro/nectar/internal/rounds"
)

// maxFrame bounds incoming frame sizes (1 MiB is far above any NECTAR
// message at the paper's scales).
const maxFrame = 1 << 20

// Config describes one process of a TCP deployment.
type Config struct {
	// Me is the local node's identity.
	Me ids.NodeID
	// Addrs maps every node ID to its "host:port" listen address. Only
	// neighbors are contacted.
	Addrs map[ids.NodeID]string
	// Neighbors is the local neighborhood Γ(Me).
	Neighbors []ids.NodeID
	// Listener optionally supplies a pre-bound listener for Addrs[Me]
	// (tests use this to allocate ephemeral ports race-free).
	Listener net.Listener
	// StartAt is the agreed instant of round 1's beginning. All processes
	// must use the same value; it must be far enough in the future for
	// connection establishment to finish.
	StartAt time.Time
	// RoundDuration is ΔT. It must comfortably exceed the network round
	// trip; 200ms is generous on localhost.
	RoundDuration time.Duration
	// Rounds is the number of synchronous rounds to execute.
	Rounds int
	// DialRetry is the backoff between connection attempts (default
	// 50ms).
	DialRetry time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Stats meters the local node's traffic.
type Stats struct {
	BytesSent     int64
	MsgsSent      int64
	MsgsDelivered int64
	// LateMsgs counts frames that arrived after their round window closed
	// and were delivered in a later round (the protocol layer discards
	// them if stale).
	LateMsgs int64
}

// frame is one received message.
type frame struct {
	from ids.NodeID
	data []byte
}

// Run executes proto over TCP for cfg.Rounds wall-clock rounds and
// returns the traffic stats. It blocks until the run completes.
func Run(cfg Config, proto rounds.Protocol) (*Stats, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	conns, ln, err := connect(cfg)
	if ln != nil {
		defer ln.Close()
	}
	if err != nil {
		closeAll(conns)
		return nil, err
	}
	defer closeAll(conns)

	incoming := make(chan frame, 1024)
	var readers sync.WaitGroup
	for id, c := range conns {
		readers.Add(1)
		go func(id ids.NodeID, c net.Conn) {
			defer readers.Done()
			readLoop(id, c, incoming)
		}(id, c)
	}

	stats := &Stats{}
	err = runRounds(cfg, proto, conns, incoming, stats)

	// Unblock readers and wait for them before returning.
	closeAll(conns)
	readers.Wait()
	return stats, err
}

func validate(cfg *Config) error {
	if cfg.Rounds <= 0 {
		return fmt.Errorf("tcpnet: Rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.RoundDuration <= 0 {
		return fmt.Errorf("tcpnet: RoundDuration must be positive")
	}
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	for _, nb := range cfg.Neighbors {
		if nb == cfg.Me {
			return fmt.Errorf("tcpnet: node %v lists itself as neighbor", cfg.Me)
		}
		if _, ok := cfg.Addrs[nb]; !ok {
			return fmt.Errorf("tcpnet: no address for neighbor %v", nb)
		}
	}
	return nil
}

// connect establishes one connection per incident edge: dial neighbors
// with smaller IDs, accept from neighbors with larger IDs.
func connect(cfg Config) (map[ids.NodeID]net.Conn, net.Listener, error) {
	conns := make(map[ids.NodeID]net.Conn, len(cfg.Neighbors))
	expectAccept := 0
	for _, nb := range cfg.Neighbors {
		if nb > cfg.Me {
			expectAccept++
		}
	}
	ln := cfg.Listener
	if ln == nil && expectAccept > 0 {
		addr, ok := cfg.Addrs[cfg.Me]
		if !ok {
			return nil, nil, fmt.Errorf("tcpnet: no listen address for %v", cfg.Me)
		}
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
		}
	}

	deadline := cfg.StartAt
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup

	// Accept loop for higher-ID neighbors.
	if expectAccept > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			accepted := 0
			for accepted < expectAccept {
				if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
					_ = d.SetDeadline(deadline)
				}
				c, err := ln.Accept()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tcpnet: accept: %w", err)
					}
					mu.Unlock()
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(c, hello[:]); err != nil {
					c.Close()
					continue
				}
				peer := ids.NodeID(binary.BigEndian.Uint32(hello[:]))
				if !isNeighbor(cfg.Neighbors, peer) || peer <= cfg.Me {
					cfg.Logf("rejecting connection claiming to be %v", peer)
					c.Close()
					continue
				}
				mu.Lock()
				if _, dup := conns[peer]; dup {
					mu.Unlock()
					c.Close()
					continue
				}
				conns[peer] = c
				mu.Unlock()
				accepted++
			}
		}()
	}

	// Dial lower-ID neighbors, retrying until the start instant.
	for _, nb := range cfg.Neighbors {
		if nb >= cfg.Me {
			continue
		}
		wg.Add(1)
		go func(nb ids.NodeID) {
			defer wg.Done()
			addr := cfg.Addrs[nb]
			for {
				c, err := net.DialTimeout("tcp", addr, cfg.DialRetry*4)
				if err == nil {
					var hello [4]byte
					binary.BigEndian.PutUint32(hello[:], uint32(cfg.Me))
					if _, err := c.Write(hello[:]); err == nil {
						mu.Lock()
						conns[nb] = c
						mu.Unlock()
						return
					}
					c.Close()
				}
				if time.Now().After(deadline) {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tcpnet: dialing %v at %s: %w", nb, addr, err)
					}
					mu.Unlock()
					return
				}
				time.Sleep(cfg.DialRetry)
			}
		}(nb)
	}
	wg.Wait()
	if firstErr != nil {
		return conns, ln, firstErr
	}
	if len(conns) != len(cfg.Neighbors) {
		return conns, ln, fmt.Errorf("tcpnet: %d of %d neighbor connections established",
			len(conns), len(cfg.Neighbors))
	}
	cfg.Logf("node %v connected to %d neighbors", cfg.Me, len(conns))
	return conns, ln, nil
}

// runRounds drives the wall-clock round loop.
func runRounds(cfg Config, proto rounds.Protocol, conns map[ids.NodeID]net.Conn, incoming <-chan frame, stats *Stats) error {
	// Wait for the agreed start instant.
	if d := time.Until(cfg.StartAt); d > 0 {
		time.Sleep(d)
	}
	for r := 1; r <= cfg.Rounds; r++ {
		roundEnd := cfg.StartAt.Add(time.Duration(r) * cfg.RoundDuration)
		for _, s := range proto.Emit(r) {
			c, ok := conns[s.To]
			if !ok {
				continue // no channel: the engine-equivalent drop
			}
			if err := writeFrame(c, cfg.Me, s.Data); err != nil {
				return fmt.Errorf("tcpnet: round %d send to %v: %w", r, s.To, err)
			}
			stats.BytesSent += int64(len(s.Data) + rounds.DefaultMsgOverhead)
			stats.MsgsSent++
		}
		// Deliver everything that arrives within the round window.
		timer := time.NewTimer(time.Until(roundEnd))
	drain:
		for {
			select {
			case f := <-incoming:
				stats.MsgsDelivered++
				proto.Deliver(r, f.from, f.data)
			case <-timer.C:
				break drain
			}
		}
		timer.Stop()
		cfg.Logf("node %v finished round %d/%d", cfg.Me, r, cfg.Rounds)
	}
	return nil
}

// writeFrame sends [from:4][len:4][payload].
func writeFrame(c net.Conn, from ids.NodeID, data []byte) error {
	hdr := make([]byte, 8, 8+len(data))
	binary.BigEndian.PutUint32(hdr[:4], uint32(from))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(data)))
	_, err := c.Write(append(hdr, data...))
	return err
}

// readLoop parses frames from one connection into the shared channel. The
// sender ID in the frame header is ignored in favor of the authenticated
// connection identity: a Byzantine neighbor cannot spoof a third party.
func readLoop(peer ids.NodeID, c net.Conn, out chan<- frame) {
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[4:8])
		if size > maxFrame {
			return // protocol violation: drop the connection
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(c, data); err != nil {
			return
		}
		out <- frame{from: peer, data: data}
	}
}

func isNeighbor(neighbors []ids.NodeID, id ids.NodeID) bool {
	for _, nb := range neighbors {
		if nb == id {
			return true
		}
	}
	return false
}

func closeAll(conns map[ids.NodeID]net.Conn) {
	for _, c := range conns {
		c.Close()
	}
}

// ErrTooFewRounds is returned by helpers when a deployment would run fewer
// rounds than NECTAR needs (n-1).
var ErrTooFewRounds = errors.New("tcpnet: rounds below the protocol horizon")
