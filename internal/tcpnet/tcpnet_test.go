package tcpnet

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
	"github.com/nectar-repro/nectar/internal/nectar"
	"github.com/nectar-repro/nectar/internal/obs"
	"github.com/nectar-repro/nectar/internal/rounds"
	"github.com/nectar-repro/nectar/internal/sig"
	"github.com/nectar-repro/nectar/internal/topology"
)

// launchCluster runs one NECTAR node per vertex of g over localhost TCP
// and returns their outcomes.
func launchCluster(t *testing.T, g *graph.Graph, tByz int, roundDur time.Duration) []nectar.Outcome {
	t.Helper()
	n := g.N()
	scheme := sig.NewEd25519(n, 99)
	nodes, err := nectar.BuildNodes(g, tByz, scheme, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-bind ephemeral listeners so every process knows every address.
	listeners := make([]net.Listener, n)
	addrs := make(map[ids.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[ids.NodeID(i)] = ln.Addr().String()
	}
	start := time.Now().Add(300 * time.Millisecond)
	outcomes := make([]nectar.Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			me := ids.NodeID(i)
			_, err := Run(Config{
				Me:            me,
				Addrs:         addrs,
				Neighbors:     g.Neighbors(me),
				Listener:      listeners[i],
				StartAt:       start,
				RoundDuration: roundDur,
				Rounds:        n - 1,
			}, nodes[i])
			if err != nil {
				errs[i] = err
				return
			}
			outcomes[i] = nodes[i].Decide()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return outcomes
}

func TestNectarOverRealTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP run skipped in -short mode")
	}
	// Ring of 6, t=1: κ=2 > 1, so every node must decide
	// NOT_PARTITIONABLE — over real sockets with Ed25519 signatures.
	g := topology.Ring(6)
	outs := launchCluster(t, g, 1, 150*time.Millisecond)
	for i, o := range outs {
		if o.Decision != nectar.NotPartitionable {
			t.Errorf("node %d decided %v over TCP", i, o.Decision)
		}
		if o.Reachable != 6 {
			t.Errorf("node %d reached %d/6", i, o.Reachable)
		}
	}
}

func TestNectarOverTCPDetectsLowConnectivity(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP run skipped in -short mode")
	}
	// Star of 5, t=1: κ=1 ≤ t — PARTITIONABLE everywhere.
	g := topology.Star(5)
	outs := launchCluster(t, g, 1, 150*time.Millisecond)
	for i, o := range outs {
		if o.Decision != nectar.Partitionable {
			t.Errorf("node %d decided %v over TCP, want PARTITIONABLE", i, o.Decision)
		}
	}
}

func TestValidation(t *testing.T) {
	base := Config{
		Me:            0,
		Addrs:         map[ids.NodeID]string{1: "127.0.0.1:1"},
		Neighbors:     []ids.NodeID{1},
		RoundDuration: time.Millisecond,
		Rounds:        1,
	}
	bad := base
	bad.Rounds = 0
	if err := validate(&bad); err == nil {
		t.Error("zero rounds accepted")
	}
	bad = base
	bad.RoundDuration = 0
	if err := validate(&bad); err == nil {
		t.Error("zero round duration accepted")
	}
	bad = base
	bad.Neighbors = []ids.NodeID{0}
	if err := validate(&bad); err == nil {
		t.Error("self neighbor accepted")
	}
	bad = base
	bad.Neighbors = []ids.NodeID{2}
	if err := validate(&bad); err == nil {
		t.Error("address-less neighbor accepted")
	}
}

func TestDialFailureSurfacesError(t *testing.T) {
	// Neighbor 0 does not exist: the dial must give up at StartAt and
	// return an error rather than hang.
	cfg := Config{
		Me:            1,
		Addrs:         map[ids.NodeID]string{0: "127.0.0.1:1", 1: "127.0.0.1:0"},
		Neighbors:     []ids.NodeID{0},
		StartAt:       time.Now().Add(200 * time.Millisecond),
		RoundDuration: 50 * time.Millisecond,
		Rounds:        1,
		DialRetry:     20 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, silent{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("expected a connection error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run hung on unreachable neighbor")
	}
}

type silent struct{}

func (silent) Emit(int) []rounds.Send          { return nil }
func (silent) Deliver(int, ids.NodeID, []byte) {}

// chatty sends one ping to a fixed peer every round.
type chatty struct{ to ids.NodeID }

func (c chatty) Emit(int) []rounds.Send {
	return []rounds.Send{{To: c.to, Data: []byte("ping")}}
}
func (chatty) Deliver(int, ids.NodeID, []byte) {}

// handshake writes the 4-byte big-endian ID hello a dialing peer sends.
func handshake(t *testing.T, c net.Conn, me ids.NodeID) {
	t.Helper()
	var hello [4]byte
	hello[3] = byte(me)
	if _, err := c.Write(hello[:]); err != nil {
		t.Fatalf("handshake as %v: %v", me, err)
	}
}

// TestReconnectAcceptsRedialedPeer drops the connection from a higher-ID
// peer mid-run: the node must survive (dropping sends, counting the
// transition) and accept the peer's re-handshake instead of dying.
func TestReconnectAcceptsRedialedPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP run skipped in -short mode")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	reg := obs.NewRegistry()
	cfg := Config{
		Me:            0,
		Addrs:         map[ids.NodeID]string{0: addr, 1: "unused"},
		Neighbors:     []ids.NodeID{1},
		Listener:      ln,
		StartAt:       time.Now().Add(250 * time.Millisecond),
		RoundDuration: 100 * time.Millisecond,
		Rounds:        8,
		Reconnect:     true,
		Metrics:       reg,
	}
	done := make(chan struct{})
	var stats *Stats
	var runErr error
	go func() {
		defer close(done)
		stats, runErr = Run(cfg, chatty{to: 1})
	}()

	// Act as peer 1: connect, handshake, then drop mid-run.
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	handshake(t, c1, 1)
	time.Sleep(500 * time.Millisecond) // a few rounds in
	c1.Close()
	time.Sleep(150 * time.Millisecond) // let the loss register + a send drop

	// Redial and re-handshake; hold the connection until the run ends.
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	handshake(t, c2, 1)

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung after peer drop")
	}
	if runErr != nil {
		t.Fatalf("Run died on peer drop: %v", runErr)
	}
	if stats.PeerDowns < 1 {
		t.Errorf("PeerDowns = %d, want >= 1", stats.PeerDowns)
	}
	if stats.PeerReconnects < 1 {
		t.Errorf("PeerReconnects = %d, want >= 1", stats.PeerReconnects)
	}
	snap := reg.Snapshot()
	counters := map[string]float64{}
	for _, m := range snap {
		counters[m.Name] = m.Value
	}
	if counters["nectar_node_peer_down_total"] < 1 {
		t.Errorf("nectar_node_peer_down_total = %v, want >= 1", counters["nectar_node_peer_down_total"])
	}
	if counters["nectar_node_peer_reconnect_total"] < 1 {
		t.Errorf("nectar_node_peer_reconnect_total = %v, want >= 1", counters["nectar_node_peer_reconnect_total"])
	}
	if counters["nectar_node_rounds_completed_total"] != float64(cfg.Rounds) {
		t.Errorf("nectar_node_rounds_completed_total = %v, want %d", counters["nectar_node_rounds_completed_total"], cfg.Rounds)
	}
}

// TestReconnectRedialsLowerPeer drops the connection at the listening
// (lower-ID) end: the higher-ID node must background-redial it and keep
// running, counting dropped sends in between.
func TestReconnectRedialsLowerPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP run skipped in -short mode")
	}
	// Act as peer 0: listen, accept node 1's dial, kill it, accept the
	// redial.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cfg := Config{
		Me:            1,
		Addrs:         map[ids.NodeID]string{0: ln.Addr().String(), 1: "unused"},
		Neighbors:     []ids.NodeID{0},
		StartAt:       time.Now().Add(250 * time.Millisecond),
		RoundDuration: 100 * time.Millisecond,
		Rounds:        8,
		DialRetry:     20 * time.Millisecond,
		Reconnect:     true,
	}
	done := make(chan struct{})
	var stats *Stats
	var runErr error
	go func() {
		defer close(done)
		stats, runErr = Run(cfg, chatty{to: 0})
	}()

	accept := func() net.Conn {
		t.Helper()
		if err := ln.(*net.TCPListener).SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		c, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept: %v", err)
		}
		var hello [4]byte
		if _, err := io.ReadFull(c, hello[:]); err != nil {
			t.Fatalf("reading hello: %v", err)
		}
		if got := ids.NodeID(binary.BigEndian.Uint32(hello[:])); got != 1 {
			t.Fatalf("hello claims node %v, want 1", got)
		}
		return c
	}
	c1 := accept()
	time.Sleep(500 * time.Millisecond) // a few rounds in
	c1.Close()
	c2 := accept() // node 1's background redial
	defer c2.Close()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung after peer drop")
	}
	if runErr != nil {
		t.Fatalf("Run died on peer drop: %v", runErr)
	}
	if stats.PeerDowns < 1 {
		t.Errorf("PeerDowns = %d, want >= 1", stats.PeerDowns)
	}
	if stats.PeerReconnects < 1 {
		t.Errorf("PeerReconnects = %d, want >= 1", stats.PeerReconnects)
	}
}

// TestWriteFailureAbortsWithoutReconnect pins the legacy contract: with
// Reconnect off, a peer drop mid-run fails the run.
func TestWriteFailureAbortsWithoutReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP run skipped in -short mode")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Me:            0,
		Addrs:         map[ids.NodeID]string{0: ln.Addr().String(), 1: "unused"},
		Neighbors:     []ids.NodeID{1},
		Listener:      ln,
		StartAt:       time.Now().Add(250 * time.Millisecond),
		RoundDuration: 50 * time.Millisecond,
		Rounds:        20,
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, chatty{to: 1})
		done <- err
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	handshake(t, c, 1)
	time.Sleep(400 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Run survived a peer drop without Reconnect; want the legacy abort")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung after peer drop")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	out := make(chan frame, 1)
	go readLoop(7, b, out)
	if err := writeFrame(a, 3, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-out:
		// The connection identity (7), not the header claim (3), is
		// authoritative.
		if f.from != 7 || string(f.data) != "payload" {
			t.Errorf("frame = %v %q", f.from, f.data)
		}
	case <-time.After(time.Second):
		t.Fatal("frame not delivered")
	}
}

func TestReadLoopDropsOversizedFrames(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	out := make(chan frame, 1)
	done := make(chan struct{})
	go func() {
		readLoop(1, b, out)
		close(done)
	}()
	hdr := make([]byte, 8)
	hdr[4] = 0xFF // 4 GB-ish claimed size
	if _, err := a.Write(hdr); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("readLoop did not drop the connection")
	}
}
