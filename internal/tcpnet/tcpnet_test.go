package tcpnet

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
	"github.com/nectar-repro/nectar/internal/nectar"
	"github.com/nectar-repro/nectar/internal/rounds"
	"github.com/nectar-repro/nectar/internal/sig"
	"github.com/nectar-repro/nectar/internal/topology"
)

// launchCluster runs one NECTAR node per vertex of g over localhost TCP
// and returns their outcomes.
func launchCluster(t *testing.T, g *graph.Graph, tByz int, roundDur time.Duration) []nectar.Outcome {
	t.Helper()
	n := g.N()
	scheme := sig.NewEd25519(n, 99)
	nodes, err := nectar.BuildNodes(g, tByz, scheme, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-bind ephemeral listeners so every process knows every address.
	listeners := make([]net.Listener, n)
	addrs := make(map[ids.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[ids.NodeID(i)] = ln.Addr().String()
	}
	start := time.Now().Add(300 * time.Millisecond)
	outcomes := make([]nectar.Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			me := ids.NodeID(i)
			_, err := Run(Config{
				Me:            me,
				Addrs:         addrs,
				Neighbors:     g.Neighbors(me),
				Listener:      listeners[i],
				StartAt:       start,
				RoundDuration: roundDur,
				Rounds:        n - 1,
			}, nodes[i])
			if err != nil {
				errs[i] = err
				return
			}
			outcomes[i] = nodes[i].Decide()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return outcomes
}

func TestNectarOverRealTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP run skipped in -short mode")
	}
	// Ring of 6, t=1: κ=2 > 1, so every node must decide
	// NOT_PARTITIONABLE — over real sockets with Ed25519 signatures.
	g := topology.Ring(6)
	outs := launchCluster(t, g, 1, 150*time.Millisecond)
	for i, o := range outs {
		if o.Decision != nectar.NotPartitionable {
			t.Errorf("node %d decided %v over TCP", i, o.Decision)
		}
		if o.Reachable != 6 {
			t.Errorf("node %d reached %d/6", i, o.Reachable)
		}
	}
}

func TestNectarOverTCPDetectsLowConnectivity(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP run skipped in -short mode")
	}
	// Star of 5, t=1: κ=1 ≤ t — PARTITIONABLE everywhere.
	g := topology.Star(5)
	outs := launchCluster(t, g, 1, 150*time.Millisecond)
	for i, o := range outs {
		if o.Decision != nectar.Partitionable {
			t.Errorf("node %d decided %v over TCP, want PARTITIONABLE", i, o.Decision)
		}
	}
}

func TestValidation(t *testing.T) {
	base := Config{
		Me:            0,
		Addrs:         map[ids.NodeID]string{1: "127.0.0.1:1"},
		Neighbors:     []ids.NodeID{1},
		RoundDuration: time.Millisecond,
		Rounds:        1,
	}
	bad := base
	bad.Rounds = 0
	if err := validate(&bad); err == nil {
		t.Error("zero rounds accepted")
	}
	bad = base
	bad.RoundDuration = 0
	if err := validate(&bad); err == nil {
		t.Error("zero round duration accepted")
	}
	bad = base
	bad.Neighbors = []ids.NodeID{0}
	if err := validate(&bad); err == nil {
		t.Error("self neighbor accepted")
	}
	bad = base
	bad.Neighbors = []ids.NodeID{2}
	if err := validate(&bad); err == nil {
		t.Error("address-less neighbor accepted")
	}
}

func TestDialFailureSurfacesError(t *testing.T) {
	// Neighbor 0 does not exist: the dial must give up at StartAt and
	// return an error rather than hang.
	cfg := Config{
		Me:            1,
		Addrs:         map[ids.NodeID]string{0: "127.0.0.1:1", 1: "127.0.0.1:0"},
		Neighbors:     []ids.NodeID{0},
		StartAt:       time.Now().Add(200 * time.Millisecond),
		RoundDuration: 50 * time.Millisecond,
		Rounds:        1,
		DialRetry:     20 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, silent{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("expected a connection error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run hung on unreachable neighbor")
	}
}

type silent struct{}

func (silent) Emit(int) []rounds.Send          { return nil }
func (silent) Deliver(int, ids.NodeID, []byte) {}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	out := make(chan frame, 1)
	go readLoop(7, b, out)
	if err := writeFrame(a, 3, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-out:
		// The connection identity (7), not the header claim (3), is
		// authoritative.
		if f.from != 7 || string(f.data) != "payload" {
			t.Errorf("frame = %v %q", f.from, f.data)
		}
	case <-time.After(time.Second):
		t.Fatal("frame not delivered")
	}
}

func TestReadLoopDropsOversizedFrames(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	out := make(chan frame, 1)
	done := make(chan struct{})
	go func() {
		readLoop(1, b, out)
		close(done)
	}()
	hdr := make([]byte, 8)
	hdr[4] = 0xFF // 4 GB-ish claimed size
	if _, err := a.Write(hdr); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("readLoop did not drop the connection")
	}
}
