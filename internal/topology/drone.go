package topology

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
)

// The drone scenario (§V-B, Fig. 2): two scatters of points are generated
// around two barycenters separated by a distance d; two drones share a
// communication channel iff their Euclidean distance is at most the
// communication scope `radius`.

// ScatterRadius is the radius of the disk around each barycenter inside
// which drone positions are drawn uniformly. The paper's calibration notes
// that d = 0 with radius = 2.4 yields a fully connected graph, which pins
// the scatter diameter at ≤ 2.4, i.e. a scatter radius of 1.2.
const ScatterRadius = 1.2

// Point is a 2D drone position.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Drone generates the drone scenario: ⌈n/2⌉ points uniform in the disk of
// radius ScatterRadius around (0,0) and ⌊n/2⌋ around (d,0), with an edge
// between every pair of points at distance ≤ radius. It returns the graph
// and the generated positions (indexed by node ID).
func Drone(n int, d, radius float64, rng *rand.Rand) (*graph.Graph, []Point, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("topology: Drone requires n >= 1, got %d", n)
	}
	if d < 0 || radius <= 0 {
		return nil, nil, fmt.Errorf("topology: Drone requires d >= 0 and radius > 0, got d=%v radius=%v", d, radius)
	}
	pts := make([]Point, n)
	firstHalf := (n + 1) / 2
	for i := range pts {
		center := Point{}
		if i >= firstHalf {
			center = Point{X: d}
		}
		pts[i] = randomInDisk(center, ScatterRadius, rng)
	}
	return GeometricGraph(pts, radius), pts, nil
}

// GeometricGraph builds the unit-disk style graph over the given points:
// an edge joins every pair at distance ≤ radius.
func GeometricGraph(pts []Point, radius float64) *graph.Graph {
	g := graph.New(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= radius {
				g.AddEdge(ids.NodeID(i), ids.NodeID(j))
			}
		}
	}
	return g
}

// randomInDisk draws a point uniformly from the disk of the given radius
// around center.
func randomInDisk(center Point, radius float64, rng *rand.Rand) Point {
	// Inverse-CDF sampling: r ~ radius*sqrt(U) is uniform over the disk.
	r := radius * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return Point{
		X: center.X + r*math.Cos(theta),
		Y: center.Y + r*math.Sin(theta),
	}
}
