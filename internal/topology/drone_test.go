package topology

import (
	"math/rand"
	"testing"

	"github.com/nectar-repro/nectar/internal/ids"
)

// Property tests for the drone substrate the dynamic subsystem's mobility
// schedules build on (internal/dynamic.DroneMobility): GeometricGraph
// symmetry, exact radius thresholding, and bit-for-bit determinism of
// Drone under a fixed seed.

// randomPoints draws n points uniformly in [-span, span]².
func randomPoints(n int, span float64, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: (rng.Float64()*2 - 1) * span,
			Y: (rng.Float64()*2 - 1) * span,
		}
	}
	return pts
}

func TestGeometricGraphIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(25, 3, rng)
		radius := 0.5 + rng.Float64()*3
		g := GeometricGraph(pts, radius)
		for i := 0; i < len(pts); i++ {
			for j := 0; j < len(pts); j++ {
				if i == j {
					continue
				}
				u, v := ids.NodeID(i), ids.NodeID(j)
				if g.HasEdge(u, v) != g.HasEdge(v, u) {
					t.Fatalf("trial %d: asymmetric edge (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestGeometricGraphRadiusExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(30, 2, rng)
		radius := 0.5 + rng.Float64()*2.5
		g := GeometricGraph(pts, radius)
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				u, v := ids.NodeID(i), ids.NodeID(j)
				want := pts[i].Dist(pts[j]) <= radius
				if g.HasEdge(u, v) != want {
					t.Fatalf("trial %d: edge (%d,%d) = %v, want %v (dist %.4f vs radius %.4f)",
						trial, i, j, g.HasEdge(u, v), want, pts[i].Dist(pts[j]), radius)
				}
			}
		}
	}
}

func TestGeometricGraphDistanceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(40, 5, rng)
	for i := range pts {
		for j := range pts {
			if pts[i].Dist(pts[j]) != pts[j].Dist(pts[i]) {
				t.Fatalf("Dist(%d,%d) not symmetric", i, j)
			}
		}
	}
}

// TestDroneDeterministicUnderFixedSeed pins bit-for-bit reproducibility:
// mobility schedules re-derive squad offsets from Drone's output, so any
// drift in RNG consumption silently desynchronizes every dynamic
// experiment.
func TestDroneDeterministicUnderFixedSeed(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		g1, pts1, err := Drone(27, 3.5, 1.8, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		g2, pts2, err := Drone(27, 3.5, 1.8, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !g1.Equal(g2) {
			t.Fatalf("seed %d: graphs differ", seed)
		}
		for i := range pts1 {
			if pts1[i] != pts2[i] {
				t.Fatalf("seed %d: point %d differs bit-for-bit: %v vs %v", seed, i, pts1[i], pts2[i])
			}
		}
	}
}

func TestDroneMatchesGeometricGraphOfItsPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g, pts, err := Drone(21, float64(trial), 1.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(GeometricGraph(pts, 1.5)) {
			t.Fatalf("trial %d: Drone graph diverges from GeometricGraph of its own positions", trial)
		}
	}
}
