package topology

import (
	"fmt"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
)

// This file reconstructs the two Logarithmic-Harary-Graph families used by
// the paper's evaluation — k-diamond and k-pasted-tree graphs (Baldoni et
// al. [25], via Bonomi et al. [23]).
//
// The reconstruction expands a 2-connected, logarithmic-diameter skeleton
// by "bags": each skeleton vertex becomes a bag of ≥ s = k/2 vertices, and
// each skeleton edge becomes a complete bipartite join between the two
// bags. A 2-connected skeleton then yields a (2s = k)-connected graph
// (every skeleton path carries s vertex-disjoint expanded paths), with
// diameter equal to the skeleton's (O(log n/k)). Skeleton positions of
// degree 2 pin the minimum degree — and hence κ — to exactly k; on perfect
// tree shapes with no degree-2 position, κ may exceed k by up to 50%.
// These are the properties the paper relies on (k-connectivity,
// flooding-friendly logarithmic diameter); package tests assert κ ≥ k
// across the evaluation grid.

// KDiamond returns the k-diamond graph over n vertices: a bag expansion of
// a "diamond" skeleton made of two mirrored heap-shaped binary trees whose
// roots are joined and whose leaves are matched round-robin. k must be
// even and n ≥ 3k/2.
func KDiamond(k, n int) (*graph.Graph, error) {
	s, bags, err := lhgParams("KDiamond", k, n)
	if err != nil {
		return nil, err
	}
	skel := diamondSkeleton(bags)
	return bagExpand(skel, n, s), nil
}

// KPastedTree returns the k-pasted-tree graph over n vertices: a bag
// expansion of a heap-shaped binary tree whose leaves are "pasted"
// together in a ring and back onto the root. k must be even and n ≥ 3k/2.
func KPastedTree(k, n int) (*graph.Graph, error) {
	s, bags, err := lhgParams("KPastedTree", k, n)
	if err != nil {
		return nil, err
	}
	skel := pastedTreeSkeleton(bags)
	return bagExpand(skel, n, s), nil
}

func lhgParams(name string, k, n int) (s, bags int, err error) {
	if k < 2 || k%2 != 0 {
		return 0, 0, fmt.Errorf("topology: %s requires even k >= 2, got k=%d", name, k)
	}
	s = k / 2
	bags = n / s
	if bags < 3 {
		return 0, 0, fmt.Errorf("topology: %s requires n >= 3k/2, got k=%d n=%d", name, k, n)
	}
	return s, bags, nil
}

// diamondSkeleton builds the diamond over b >= 3 bags: a top heap tree on
// ⌈b/2⌉ bags and a bottom heap tree on the rest, with the two roots joined
// and the two leaf sets matched round-robin.
func diamondSkeleton(b int) *graph.Graph {
	top := (b + 1) / 2
	bottom := b - top
	g := graph.New(b)
	addHeapTree(g, 0, top)
	addHeapTree(g, top, bottom)
	g.AddEdge(0, ids.NodeID(top)) // join the roots
	topLeaves := heapLeaves(0, top)
	botLeaves := heapLeaves(top, bottom)
	match := len(topLeaves)
	if len(botLeaves) > match {
		match = len(botLeaves)
	}
	for i := 0; i < match; i++ {
		u := topLeaves[i%len(topLeaves)]
		v := botLeaves[i%len(botLeaves)]
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// pastedTreeSkeleton builds the pasted tree over b >= 3 bags: a heap tree
// with its leaves joined in a ring and the highest-index leaf pasted back
// onto the root.
func pastedTreeSkeleton(b int) *graph.Graph {
	g := graph.New(b)
	addHeapTree(g, 0, b)
	leaves := heapLeaves(0, b)
	for i := range leaves {
		next := leaves[(i+1)%len(leaves)]
		if leaves[i] != next {
			g.AddEdge(leaves[i], next)
		}
	}
	last := leaves[len(leaves)-1]
	if last != 0 {
		g.AddEdge(0, last)
	}
	return g
}

// addHeapTree adds the heap-shaped binary tree over vertices
// base..base+count-1 (vertex base+i has children base+2i+1, base+2i+2).
func addHeapTree(g *graph.Graph, base, count int) {
	for i := 0; i < count; i++ {
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < count {
				g.AddEdge(ids.NodeID(base+i), ids.NodeID(base+c))
			}
		}
	}
}

// heapLeaves returns the leaves (no children) of the heap tree over
// base..base+count-1.
func heapLeaves(base, count int) []ids.NodeID {
	var out []ids.NodeID
	for i := 0; i < count; i++ {
		if 2*i+1 >= count {
			out = append(out, ids.NodeID(base+i))
		}
	}
	return out
}

// bagExpand expands a skeleton into a graph over exactly n vertices:
// skeleton vertex b becomes a bag of s (or more, to absorb n mod s)
// consecutive vertices, and each skeleton edge becomes a complete
// bipartite join between the corresponding bags. Bags are internally
// edgeless, so the minimum degree is 2s = k at degree-2 skeleton
// positions.
func bagExpand(skel *graph.Graph, n, s int) *graph.Graph {
	b := skel.N()
	sizes := make([]int, b)
	for i := range sizes {
		sizes[i] = s
	}
	for extra := n - b*s; extra > 0; extra-- {
		sizes[extra%b]++
	}
	start := make([]int, b+1)
	for i := 0; i < b; i++ {
		start[i+1] = start[i] + sizes[i]
	}
	g := graph.New(n)
	for _, e := range skel.Edges() {
		for u := start[e.U]; u < start[e.U+1]; u++ {
			for v := start[e.V]; v < start[e.V+1]; v++ {
				g.AddEdge(ids.NodeID(u), ids.NodeID(v))
			}
		}
	}
	return g
}
