// Package topology generates the network families used in the paper's
// evaluation (§V-B):
//
//   - k-regular k-connected graphs (Harary graphs, plus Steger–Wormald
//     random regular graphs, the paper's citation [24]);
//   - k-diamond and k-pasted-tree graphs, reconstructions of the
//     Logarithmic Harary Graphs of Baldoni et al. [25] (k-connected,
//     logarithmic diameter — see DESIGN.md §4 for the reconstruction
//     argument);
//   - generalized and multipartite wheel graphs (Bonomi et al. [23]),
//     the Byzantine worst cases with a potential adversarial hub clique;
//   - the drone scenario: random geometric graphs over two scatters of
//     points around barycenters separated by a distance d (§V-B, Fig. 2);
//   - elementary shapes (line, ring, star, complete, Erdős–Rényi) used by
//     tests and examples.
//
// All randomized generators take an explicit *rand.Rand so experiments are
// reproducible from seeds.
package topology

import (
	"fmt"
	"math/rand"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
)

// Line returns the path graph 0-1-...-n-1 (κ = 1).
func Line(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n-1; v++ {
		g.AddEdge(ids.NodeID(v), ids.NodeID(v+1))
	}
	return g
}

// Ring returns the cycle over n vertices (κ = 2 for n ≥ 3).
func Ring(n int) *graph.Graph {
	g := Line(n)
	if n >= 3 {
		g.AddEdge(0, ids.NodeID(n-1))
	}
	return g
}

// Star returns the star with center 0 and n-1 leaves (κ = 1): the paper's
// Fig. 1b, 1-Byzantine-partitionable at the center.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, ids.NodeID(v))
	}
	return g
}

// Complete returns K_n (κ = n-1).
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(ids.NodeID(u), ids.NodeID(v))
		}
	}
	return g
}

// ErdosRenyi returns G(n, p): every pair is an edge independently with
// probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(ids.NodeID(u), ids.NodeID(v))
			}
		}
	}
	return g
}

// Harary returns the Harary graph H_{k,n}: a k-connected graph over n
// vertices with the minimum possible number of edges, ⌈kn/2⌉. For even k
// it is the circulant C_n(1..k/2); odd k adds (near-)diameter chords.
// This is the "k-regular k-connected" family of the paper's Fig. 3
// (connectivity exactly k, each node with k neighbors for even k·n).
func Harary(k, n int) (*graph.Graph, error) {
	if k < 1 || n < k+1 {
		return nil, fmt.Errorf("topology: Harary requires 1 <= k < n, got k=%d n=%d", k, n)
	}
	g := graph.New(n)
	if k == 1 {
		// Minimal 1-connected graph: a path.
		return Line(n), nil
	}
	r := k / 2
	for off := 1; off <= r; off++ {
		for v := 0; v < n; v++ {
			g.AddEdge(ids.NodeID(v), ids.NodeID((v+off)%n))
		}
	}
	if k%2 == 1 {
		if n%2 == 0 {
			for v := 0; v < n/2; v++ {
				g.AddEdge(ids.NodeID(v), ids.NodeID(v+n/2))
			}
		} else {
			// Classic odd-k, odd-n construction: connect i to i+(n-1)/2
			// for 0 <= i <= (n-1)/2.
			half := (n - 1) / 2
			for v := 0; v <= half; v++ {
				g.AddEdge(ids.NodeID(v), ids.NodeID((v+half)%n))
			}
		}
	}
	return g, nil
}

// RandomRegular returns a uniform-ish random simple k-regular graph over n
// vertices using the Steger–Wormald pairing procedure (paper citation
// [24]). It requires k < n and k·n even. The result is k-regular but its
// connectivity is only k with high probability; use RandomRegularConnected
// when exact connectivity is required.
func RandomRegular(k, n int, rng *rand.Rand) (*graph.Graph, error) {
	if k < 0 || k >= n {
		return nil, fmt.Errorf("topology: RandomRegular requires 0 <= k < n, got k=%d n=%d", k, n)
	}
	if k*n%2 != 0 {
		return nil, fmt.Errorf("topology: RandomRegular requires even k*n, got k=%d n=%d", k, n)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if g, ok := tryPairing(k, n, rng); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: RandomRegular(k=%d, n=%d) failed after %d attempts", k, n, maxAttempts)
}

// tryPairing runs one Steger–Wormald attempt: repeatedly join two random
// unsaturated distinct non-adjacent vertices (weighted by remaining
// stubs). Fails if it gets stuck.
func tryPairing(k, n int, rng *rand.Rand) (*graph.Graph, bool) {
	g := graph.New(n)
	stubs := make([]ids.NodeID, 0, k*n)
	for v := 0; v < n; v++ {
		for i := 0; i < k; i++ {
			stubs = append(stubs, ids.NodeID(v))
		}
	}
	// A generous retry budget per edge keeps the failure probability low
	// while guaranteeing termination.
	for len(stubs) > 0 {
		placed := false
		for try := 0; try < 50*len(stubs); try++ {
			i := rng.Intn(len(stubs))
			j := rng.Intn(len(stubs))
			u, v := stubs[i], stubs[j]
			if i == j || u == v || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v)
			// Remove the two used stubs (order matters: delete the larger
			// index first).
			if i < j {
				i, j = j, i
			}
			stubs[i] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			stubs[j] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return g, true
}

// RandomRegularConnected returns a random k-regular graph with vertex
// connectivity exactly k, retrying the pairing until the connectivity
// check passes.
func RandomRegularConnected(k, n int, rng *rand.Rand) (*graph.Graph, error) {
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, err := RandomRegular(k, n, rng)
		if err != nil {
			return nil, err
		}
		if g.ConnectivityAtLeast(k) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: RandomRegularConnected(k=%d, n=%d): connectivity %d not reached", k, n, maxAttempts)
}
