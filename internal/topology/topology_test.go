package topology

import (
	"math/rand"
	"testing"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
)

func TestElementaryShapes(t *testing.T) {
	tests := []struct {
		name          string
		g             *graph.Graph
		wantN, wantM  int
		wantConnected bool
	}{
		{"line5", Line(5), 5, 4, true},
		{"ring5", Ring(5), 5, 5, true},
		{"ring2", Ring(2), 2, 1, true},
		{"star7", Star(7), 7, 6, true},
		{"complete6", Complete(6), 6, 15, true},
		{"line1", Line(1), 1, 0, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.wantN || tc.g.M() != tc.wantM {
				t.Errorf("got n=%d m=%d, want n=%d m=%d", tc.g.N(), tc.g.M(), tc.wantN, tc.wantM)
			}
			if tc.g.IsConnected() != tc.wantConnected {
				t.Errorf("IsConnected = %v, want %v", tc.g.IsConnected(), tc.wantConnected)
			}
		})
	}
}

func TestStarMatchesPaperFig1b(t *testing.T) {
	// Fig. 1b: the star is 1-Byzantine-partitionable (center is a cut).
	g := Star(6)
	if got := g.Connectivity(); got != 1 {
		t.Fatalf("star connectivity = %d, want 1", got)
	}
	if !g.IsTByzPartitionable(1) {
		t.Error("star should be 1-Byzantine partitionable")
	}
	cut, ok := g.MinVertexCut()
	if !ok || len(cut) != 1 || cut[0] != 0 {
		t.Errorf("min cut = %v, want [p0]", cut)
	}
}

func TestHararyProperties(t *testing.T) {
	// H_{k,n} must be k-connected with ⌈kn/2⌉ edges (the minimum).
	for _, tc := range []struct{ k, n int }{
		{2, 5}, {2, 20}, {3, 8}, {3, 9}, {4, 10}, {5, 12}, {5, 13},
		{6, 20}, {7, 15}, {10, 20}, {10, 21},
	} {
		g, err := Harary(tc.k, tc.n)
		if err != nil {
			t.Fatalf("Harary(%d,%d): %v", tc.k, tc.n, err)
		}
		if got := g.Connectivity(); got != tc.k {
			t.Errorf("Harary(%d,%d) connectivity = %d, want %d", tc.k, tc.n, got, tc.k)
		}
		wantM := (tc.k*tc.n + 1) / 2
		if g.M() != wantM {
			t.Errorf("Harary(%d,%d) m = %d, want %d", tc.k, tc.n, g.M(), wantM)
		}
	}
}

func TestHararyEvenKIsRegular(t *testing.T) {
	g, err := Harary(6, 20)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(ids.NodeID(v)); d != 6 {
			t.Fatalf("vertex %d degree = %d, want 6", v, d)
		}
	}
}

func TestHararyErrors(t *testing.T) {
	if _, err := Harary(0, 5); err == nil {
		t.Error("Harary(0,5) should fail")
	}
	if _, err := Harary(5, 5); err == nil {
		t.Error("Harary(5,5) should fail (k must be < n)")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ k, n int }{{2, 10}, {3, 10}, {4, 15}, {6, 30}} {
		g, err := RandomRegular(tc.k, tc.n, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.k, tc.n, err)
		}
		for v := 0; v < tc.n; v++ {
			if d := g.Degree(ids.NodeID(v)); d != tc.k {
				t.Fatalf("RandomRegular(%d,%d) vertex %d degree %d", tc.k, tc.n, v, d)
			}
		}
	}
	if _, err := RandomRegular(3, 9, rng); err == nil {
		t.Error("odd k*n should fail")
	}
	if _, err := RandomRegular(9, 9, rng); err == nil {
		t.Error("k >= n should fail")
	}
}

func TestRandomRegularConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := RandomRegularConnected(4, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Connectivity(); got != 4 {
		t.Errorf("connectivity = %d, want 4", got)
	}
}

func TestLHGFamiliesAreKConnected(t *testing.T) {
	// The reproduction relies on KDiamond/KPastedTree(k,n) being
	// k-connected across the evaluation grid (DESIGN.md S3); κ may exceed
	// k by up to 50% on perfect-tree skeleton shapes (see lhg.go).
	for _, gen := range []struct {
		name string
		fn   func(k, n int) (*graph.Graph, error)
	}{
		{"KDiamond", KDiamond},
		{"KPastedTree", KPastedTree},
	} {
		for _, tc := range []struct{ k, n int }{
			{2, 6}, {2, 20}, {4, 12}, {4, 30}, {6, 25}, {8, 40}, {10, 50}, {10, 100},
		} {
			g, err := gen.fn(tc.k, tc.n)
			if err != nil {
				t.Fatalf("%s(%d,%d): %v", gen.name, tc.k, tc.n, err)
			}
			if g.N() != tc.n {
				t.Fatalf("%s(%d,%d) has %d vertices", gen.name, tc.k, tc.n, g.N())
			}
			got := g.Connectivity()
			if got < tc.k {
				t.Errorf("%s(%d,%d) connectivity = %d, want >= %d", gen.name, tc.k, tc.n, got, tc.k)
			}
			if got > tc.k+tc.k/2 {
				t.Errorf("%s(%d,%d) connectivity = %d, above 3k/2 = %d", gen.name, tc.k, tc.n, got, tc.k+tc.k/2)
			}
		}
	}
}

func TestLHGLogDiameter(t *testing.T) {
	// The point of the LHG families: diameter grows logarithmically, far
	// below the linear diameter of the Harary circulant at equal k.
	g, err := KPastedTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := g.Diameter()
	if !ok {
		t.Fatal("KPastedTree disconnected")
	}
	h, err := Harary(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	dh, _ := h.Diameter()
	if d >= dh {
		t.Errorf("KPastedTree diameter %d not below Harary diameter %d", d, dh)
	}
	if d > 14 {
		t.Errorf("KPastedTree(4,100) diameter %d suspiciously large", d)
	}
}

func TestLHGErrors(t *testing.T) {
	if _, err := KDiamond(3, 30); err == nil {
		t.Error("odd k should fail")
	}
	if _, err := KDiamond(10, 10); err == nil {
		t.Error("n < 3k/2 should fail")
	}
	if _, err := KPastedTree(0, 30); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestGeneralizedWheel(t *testing.T) {
	for _, tc := range []struct{ c, n, wantK int }{
		{0, 8, 2},  // plain cycle
		{1, 9, 3},  // classic wheel
		{2, 10, 4}, // κ = c+2
		{4, 20, 6},
		{8, 35, 10},
	} {
		g, err := GeneralizedWheel(tc.c, tc.n)
		if err != nil {
			t.Fatalf("GW(%d,%d): %v", tc.c, tc.n, err)
		}
		if got := g.Connectivity(); got != tc.wantK {
			t.Errorf("GW(%d,%d) connectivity = %d, want %d", tc.c, tc.n, got, tc.wantK)
		}
	}
	if _, err := GeneralizedWheel(6, 8); err == nil {
		t.Error("n-c < 3 should fail")
	}
}

func TestGeneralizedWheelHubIsCutWithRing(t *testing.T) {
	// The Byzantine worst case: the hub clique plus two external vertices
	// form a minimum cut; a Byzantine hub can sever any two cycle arcs.
	g, err := GeneralizedWheel(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	drop := ids.NewSet(0, 1, 2, 4, 6) // hub + two non-adjacent cycle nodes
	if g.InducedSubgraphConnected(drop) {
		t.Error("hub + 2 cycle vertices should disconnect GW(3,12)")
	}
}

func TestMultipartiteWheel(t *testing.T) {
	for _, tc := range []struct{ c, parts, n int }{
		{2, 2, 10}, {4, 2, 16}, {6, 3, 24}, {6, 2, 30},
	} {
		g, err := MultipartiteWheel(tc.c, tc.parts, tc.n)
		if err != nil {
			t.Fatalf("MW(%d,%d,%d): %v", tc.c, tc.parts, tc.n, err)
		}
		if !g.IsConnected() {
			t.Fatalf("MW(%d,%d,%d) disconnected", tc.c, tc.parts, tc.n)
		}
		// The multipartite hub drops intra-part edges, never external
		// ones, so κ(MW) ≤ κ(GW) at equal c.
		gw, err := GeneralizedWheel(tc.c, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if km, kg := g.Connectivity(), gw.Connectivity(); km > kg {
			t.Errorf("MW κ=%d exceeds GW κ=%d", km, kg)
		}
		if g.Connectivity() < 2 {
			t.Errorf("MW(%d,%d,%d) κ=%d below 2", tc.c, tc.parts, tc.n, g.Connectivity())
		}
	}
	if _, err := MultipartiteWheel(2, 3, 10); err == nil {
		t.Error("parts > c should fail")
	}
}

func TestDroneScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// d = 0, radius = 2.4: fully connected (paper calibration).
	g, pts, err := Drone(20, 0, 2.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 || g.N() != 20 {
		t.Fatalf("wrong sizes: %d points, n=%d", len(pts), g.N())
	}
	if !g.IsComplete() {
		t.Errorf("d=0 radius=2.4 should be fully connected, got m=%d", g.M())
	}
	// d = 6: partitioned into (at least) the two scatters, for any radius
	// ≤ 2.4 (gap is 6 - 2*1.2 = 3.6).
	g, _, err = Drone(20, 6, 2.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsPartitioned() {
		t.Error("d=6 should be partitioned")
	}
	for _, e := range g.Edges() {
		if (e.U < 10) != (e.V < 10) {
			t.Errorf("edge %v crosses the two scatters at d=6", e)
		}
	}
}

func TestDronePositionsInsideScatters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, pts, err := Drone(31, 3, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		center := Point{}
		if i >= 16 { // ⌈31/2⌉ = 16 in the first scatter
			center = Point{X: 3}
		}
		if p.Dist(center) > ScatterRadius+1e-9 {
			t.Errorf("point %d at %v outside its scatter", i, p)
		}
	}
}

func TestDroneErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := Drone(0, 1, 1, rng); err == nil {
		t.Error("n=0 should fail")
	}
	if _, _, err := Drone(5, -1, 1, rng); err == nil {
		t.Error("negative d should fail")
	}
	if _, _, err := Drone(5, 1, 0, rng); err == nil {
		t.Error("zero radius should fail")
	}
}

func TestGeometricGraphThreshold(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {2.5, 0}}
	g := GeometricGraph(pts, 1.0)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Errorf("unexpected edges: %v", g)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if g := ErdosRenyi(8, 0, rng); g.M() != 0 {
		t.Error("p=0 should produce no edges")
	}
	if g := ErdosRenyi(8, 1, rng); !g.IsComplete() {
		t.Error("p=1 should produce K_n")
	}
}

func TestEvaluationGridConnectivity(t *testing.T) {
	// The Fig. 3 grid: Harary graphs for k ∈ {2,10,18,26,34}, n up to 100.
	// (Full κ verification on the largest points; this guards the harness
	// assumptions.)
	if testing.Short() {
		t.Skip("grid check skipped in -short mode")
	}
	for _, k := range []int{2, 10, 18, 26, 34} {
		for _, n := range []int{60, 100} {
			g, err := Harary(k, n)
			if err != nil {
				t.Fatalf("Harary(%d,%d): %v", k, n, err)
			}
			if !g.ConnectivityAtLeast(k) {
				t.Errorf("Harary(%d,%d) connectivity below %d", k, n, k)
			}
		}
	}
}
