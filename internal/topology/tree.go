package topology

import (
	"fmt"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
)

// Hierarchical topologies after Kailkhura et al., "Distributed Detection
// in Tree Topologies with Byzantines" (PAPERS.md): sensor networks and
// fleet command structures are trees of bounded branching, the natural
// sparse family for the large-n regime — n=10⁴ tree runs carry O(n) edges
// where a geometric scatter of the same size would carry ~10⁶.

// KaryTree returns the balanced k-ary tree over n vertices in heap order:
// vertex v > 0 hangs off parent (v-1)/k. Trees have κ = 1 everywhere
// (every internal vertex is a cut vertex), the worst detection case of
// Corollary 1: a single Byzantine node partitions the network.
func KaryTree(k, n int) (*graph.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("topology: k-ary tree needs k >= 1, got %d", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: k-ary tree needs n >= 1, got %d", n)
	}
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(ids.NodeID(v), ids.NodeID((v-1)/k))
	}
	return g, nil
}

// TreeOfCliques returns a hierarchy of `cliques` cliques of size c each,
// arranged as a k-ary tree in heap order, with every parent/child clique
// pair joined by a b-edge matching (child i of a parent uses a distinct
// block of b parent vertices, which requires k*b ≤ c so sibling matchings
// don't share parent endpoints). Vertices are numbered clique-major:
// clique q owns [q*c, (q+1)*c).
//
// The minimum vertex cut is the smaller of the two obvious ones — the b
// matching endpoints above a leaf clique, or the c-1 clique-mates around a
// single vertex — so κ = min(b, c-1) for cliques ≥ 2; the property tests
// verify this against exact max-flow κ. It is the tunable-κ hierarchical
// family: b = t+1 makes the hierarchy exactly t-resilient.
func TreeOfCliques(cliques, c, b, k int) (*graph.Graph, error) {
	if cliques < 1 {
		return nil, fmt.Errorf("topology: tree-of-cliques needs cliques >= 1, got %d", cliques)
	}
	if c < 2 {
		return nil, fmt.Errorf("topology: tree-of-cliques needs clique size >= 2, got %d", c)
	}
	if b < 1 || b > c {
		return nil, fmt.Errorf("topology: matching width %d outside [1,%d]", b, c)
	}
	if k < 1 {
		return nil, fmt.Errorf("topology: tree-of-cliques needs k >= 1, got %d", k)
	}
	if k*b > c {
		return nil, fmt.Errorf("topology: k*b = %d exceeds clique size %d (sibling matchings would collide)", k*b, c)
	}
	g := graph.New(cliques * c)
	vert := func(q, i int) ids.NodeID { return ids.NodeID(q*c + i) }
	for q := 0; q < cliques; q++ {
		for i := 0; i < c; i++ {
			for j := i + 1; j < c; j++ {
				g.AddEdge(vert(q, i), vert(q, j))
			}
		}
	}
	for q := 1; q < cliques; q++ {
		parent := (q - 1) / k
		slot := (q - 1) % k // which child of parent, selecting its endpoint block
		for i := 0; i < b; i++ {
			g.AddEdge(vert(parent, slot*b+i), vert(q, i))
		}
	}
	return g, nil
}
