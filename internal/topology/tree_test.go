package topology

import (
	"testing"

	"github.com/nectar-repro/nectar/internal/ids"
)

func TestKaryTreeProperties(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		for _, n := range []int{1, 2, 7, 20, 41} {
			g, err := KaryTree(k, n)
			if err != nil {
				t.Fatalf("KaryTree(%d,%d): %v", k, n, err)
			}
			if g.N() != n || g.M() != n-1 {
				t.Fatalf("KaryTree(%d,%d): n=%d m=%d", k, n, g.N(), g.M())
			}
			if n > 1 && !g.IsConnected() {
				t.Fatalf("KaryTree(%d,%d) disconnected", k, n)
			}
			for v := 0; v < n; v++ {
				max := k + 1
				if v == 0 {
					max = k
				}
				if d := g.Degree(ids.NodeID(v)); d > max {
					t.Fatalf("KaryTree(%d,%d): deg(%d)=%d > %d", k, n, v, d, max)
				}
			}
			// Trees are the κ = 1 worst case (except degenerate sizes).
			if n >= 3 {
				if kap := g.Connectivity(); kap != 1 {
					t.Fatalf("KaryTree(%d,%d): κ=%d", k, n, kap)
				}
			}
		}
	}
}

func TestKaryTreeErrors(t *testing.T) {
	if _, err := KaryTree(0, 5); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KaryTree(2, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestTreeOfCliquesKappaIsCliqueCut(t *testing.T) {
	// κ = min(b, c-1): the matching above a leaf clique vs the clique-mates
	// of a single vertex, verified against exact max-flow κ.
	cases := []struct{ cliques, c, b, k int }{
		{1, 4, 1, 2},  // single clique: complete, κ = c-1
		{3, 4, 1, 2},  // b=1: bridges dominate
		{3, 4, 2, 2},  // b=2 < c-1=3
		{4, 6, 3, 2},  // b=3 < c-1=5
		{5, 5, 2, 2},  // deeper tree
		{7, 6, 2, 3},  // 3-ary
		{3, 3, 2, 1},  // b=2 = c-1: tie
		{2, 5, 4, 1},  // b=4 = c-1: tie at 4
		{13, 4, 1, 3}, // wide 3-ary
	}
	for _, tc := range cases {
		g, err := TreeOfCliques(tc.cliques, tc.c, tc.b, tc.k)
		if err != nil {
			t.Fatalf("TreeOfCliques(%+v): %v", tc, err)
		}
		if g.N() != tc.cliques*tc.c {
			t.Fatalf("TreeOfCliques(%+v): n=%d", tc, g.N())
		}
		want := tc.c - 1
		if tc.cliques > 1 && tc.b < want {
			want = tc.b
		}
		if kap := g.Connectivity(); kap != want {
			t.Fatalf("TreeOfCliques(%+v): κ=%d want %d", tc, kap, want)
		}
	}
}

func TestTreeOfCliquesErrors(t *testing.T) {
	bad := []struct{ cliques, c, b, k int }{
		{0, 4, 1, 2}, // no cliques
		{3, 1, 1, 2}, // clique too small
		{3, 4, 0, 2}, // empty matching
		{3, 4, 5, 2}, // matching wider than clique
		{3, 4, 3, 2}, // k*b > c: sibling collision
	}
	for _, tc := range bad {
		if _, err := TreeOfCliques(tc.cliques, tc.c, tc.b, tc.k); err == nil {
			t.Fatalf("TreeOfCliques(%+v) accepted", tc)
		}
	}
}
