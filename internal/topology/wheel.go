package topology

import (
	"fmt"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
)

// Wheel families (Bonomi et al. [23]): the Byzantine worst-case
// topologies, where Byzantine nodes may occupy a central hub while only
// one (generalized wheel) or a few (multipartite wheel) external paths
// link the correct nodes.

// GeneralizedWheel returns the generalized wheel GW(c, n): a hub clique of
// c vertices (IDs 0..c-1), an external cycle over the remaining n-c
// vertices, and spokes from every external vertex to every hub vertex.
// Its vertex connectivity is c+2 (removing the hub plus two cycle
// vertices is a minimum cut). Requires n-c ≥ 3 and c ≥ 0; c = 0 is the
// plain cycle.
func GeneralizedWheel(c, n int) (*graph.Graph, error) {
	if c < 0 || n-c < 3 {
		return nil, fmt.Errorf("topology: GeneralizedWheel requires c >= 0 and n-c >= 3, got c=%d n=%d", c, n)
	}
	g := graph.New(n)
	// Hub clique.
	for u := 0; u < c; u++ {
		for v := u + 1; v < c; v++ {
			g.AddEdge(ids.NodeID(u), ids.NodeID(v))
		}
	}
	addCycleAndSpokes(g, c, n)
	return g, nil
}

// MultipartiteWheel returns MW(c, parts, n): like the generalized wheel,
// but the c hub vertices form a complete multipartite graph with `parts`
// parts (intra-part pairs are NOT adjacent) instead of a clique, giving
// the "few paths" variant of the Byzantine worst case. Requires
// 1 ≤ parts ≤ c (parts == c degenerates to the clique hub) and n-c ≥ 3.
func MultipartiteWheel(c, parts, n int) (*graph.Graph, error) {
	if c < 1 || parts < 1 || parts > c || n-c < 3 {
		return nil, fmt.Errorf("topology: MultipartiteWheel requires 1 <= parts <= c and n-c >= 3, got c=%d parts=%d n=%d", c, parts, n)
	}
	g := graph.New(n)
	// Complete multipartite hub: vertex v belongs to part v mod parts.
	for u := 0; u < c; u++ {
		for v := u + 1; v < c; v++ {
			if u%parts != v%parts {
				g.AddEdge(ids.NodeID(u), ids.NodeID(v))
			}
		}
	}
	addCycleAndSpokes(g, c, n)
	return g, nil
}

// addCycleAndSpokes adds the external cycle over vertices c..n-1 and
// spokes from each external vertex to every hub vertex 0..c-1.
func addCycleAndSpokes(g *graph.Graph, c, n int) {
	for v := c; v < n; v++ {
		next := v + 1
		if next == n {
			next = c
		}
		if next != v {
			g.AddEdge(ids.NodeID(v), ids.NodeID(next))
		}
		for h := 0; h < c; h++ {
			g.AddEdge(ids.NodeID(v), ids.NodeID(h))
		}
	}
}
