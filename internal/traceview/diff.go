package traceview

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/nectar-repro/nectar/internal/obs"
)

// Divergence locates the first difference between two traces.
type Divergence struct {
	// Index is the 0-based position of the first differing event; when
	// one trace is a strict prefix of the other, Index is the shorter
	// length and the missing side is nil.
	Index int
	A, B  *obs.Event
}

// Diff compares two traces event-by-event and returns the first
// divergence, or nil if they are identical. Ts is part of the
// comparison: under the deterministic LogicalClock two equivalent runs
// stamp identical ordinals, so a Ts skew is itself a divergence worth
// surfacing (it means event order shifted upstream).
func Diff(a, b []obs.Event) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !eventEqual(a[i], b[i]) {
			return &Divergence{Index: i, A: &a[i], B: &b[i]}
		}
	}
	if len(a) == len(b) {
		return nil
	}
	d := &Divergence{Index: n}
	if len(a) > n {
		d.A = &a[n]
	} else {
		d.B = &b[n]
	}
	return d
}

func eventEqual(a, b obs.Event) bool {
	if a.Ts != b.Ts || a.Type != b.Type || a.Round != b.Round || a.Epoch != b.Epoch ||
		a.Node != b.Node || a.Unit != b.Unit || a.Key != b.Key || a.N != b.N ||
		len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	return true
}

// WriteText renders the divergence (or identity) report.
func (d *Divergence) WriteText(w io.Writer, lenA, lenB int) error {
	if d == nil {
		fmt.Fprintf(w, "traces identical (%d events)\n", lenA)
		return nil
	}
	fmt.Fprintf(w, "traces diverge at event %d (a: %d events, b: %d events)\n", d.Index, lenA, lenB)
	writeSide(w, "a", d.A)
	writeSide(w, "b", d.B)
	return nil
}

func writeSide(w io.Writer, label string, ev *obs.Event) {
	if ev == nil {
		fmt.Fprintf(w, "  %s: <end of trace>\n", label)
		return
	}
	// Event has no map fields, so Marshal output is deterministic.
	b, _ := json.Marshal(ev)
	fmt.Fprintf(w, "  %s: %s\n", label, b)
}
