package traceview

import (
	"fmt"
	"io"

	"github.com/nectar-repro/nectar/internal/obs"
)

// NodeStory is one node's evidence timeline inside one segment: the
// provenance behind its verdict, reconstructed purely from trace events.
type NodeStory struct {
	Node    int
	Segment *Segment
	// Rounds holds the node's per-round evidence activity, round order.
	Rounds []NodeRound
	// Eval is the node's kappa_eval event (nil if the trace carries none,
	// e.g. evidence tracing was off or the node is Byzantine).
	Eval *obs.Event
	// ReachFinalRound is the round of the last reach_grow (0 if the
	// reachable set never grew — the node saw no usable evidence).
	ReachFinalRound int
	// ReachFinal is the reachable-set size after the last growth.
	ReachFinal int64
	// LastAcceptRound is the round of the last chain_accept (0 if none).
	// The node's view — and hence its verdict — is fixed from
	// max(ReachFinalRound, LastAcceptRound) onward.
	LastAcceptRound int
}

// NodeRound is one round of a node's evidence activity.
type NodeRound struct {
	Round     int
	Delivered int64
	Accepts   int64
	Rejects   int64
	// ReachFrom/ReachTo bracket the round's reachable-set growth
	// (ReachTo 0 when the set did not grow this round).
	ReachFrom int64
	ReachTo   int64
}

// Explain reconstructs node's story in each segment of the trace.
func Explain(events []obs.Event, node int) []NodeStory {
	segs := Split(events)
	stories := make([]NodeStory, 0, len(segs))
	for i := range segs {
		stories = append(stories, explainSegment(&segs[i], node))
	}
	return stories
}

func explainSegment(seg *Segment, node int) NodeStory {
	st := NodeStory{Node: node, Segment: seg}
	row := func(r int) *NodeRound {
		if n := len(st.Rounds); n > 0 && st.Rounds[n-1].Round == r {
			return &st.Rounds[n-1]
		}
		st.Rounds = append(st.Rounds, NodeRound{Round: r})
		return &st.Rounds[len(st.Rounds)-1]
	}
	for i, ev := range seg.Events {
		if ev.Node != node {
			continue
		}
		switch ev.Type {
		case obs.EvMsgDeliver:
			row(ev.Round).Delivered += ev.N
		case obs.EvChainAccept:
			row(ev.Round).Accepts++
			st.LastAcceptRound = ev.Round
		case obs.EvChainReject:
			row(ev.Round).Rejects++
		case obs.EvReachGrow:
			nr := row(ev.Round)
			if nr.ReachTo == 0 {
				nr.ReachFrom = attr(ev, "prev")
			}
			nr.ReachTo = ev.N
			st.ReachFinalRound = ev.Round
			st.ReachFinal = ev.N
		case obs.EvKappaEval:
			st.Eval = &seg.Events[i]
		}
	}
	return st
}

// DeterminedRound is the round from which the node's verdict was fixed:
// after the last accepted chain the view never changes, so Decide would
// return the same outcome from this round to the horizon. 0 means no
// evidence was ever accepted (the verdict rests on the empty view).
func (st *NodeStory) DeterminedRound() int {
	if st.LastAcceptRound > st.ReachFinalRound {
		return st.LastAcceptRound
	}
	return st.ReachFinalRound
}

// WriteText renders one node story. Deterministic: rounds ascend,
// everything else is scalar.
func (st *NodeStory) WriteText(w io.Writer) error {
	writeSegmentHeader(w, st.Segment)
	fmt.Fprintf(w, "node %d evidence timeline:\n", st.Node)
	if len(st.Rounds) == 0 {
		fmt.Fprintf(w, "  no events for this node (evidence tracing off, or node outside [0,n))\n")
	}
	for _, nr := range st.Rounds {
		fmt.Fprintf(w, "  round %3d: recv %3d, accept %3d, reject %3d", nr.Round, nr.Delivered, nr.Accepts, nr.Rejects)
		if nr.ReachTo > 0 {
			fmt.Fprintf(w, ", reach %d -> %d", nr.ReachFrom, nr.ReachTo)
		}
		fmt.Fprintln(w)
	}
	if st.ReachFinalRound > 0 {
		fmt.Fprintf(w, "  reachable set final at round %d (size %d)\n", st.ReachFinalRound, st.ReachFinal)
	}
	if dr := st.DeterminedRound(); dr > 0 {
		fmt.Fprintf(w, "  verdict fixed from round %d (last accepted evidence)\n", dr)
	}
	if ev := st.Eval; ev != nil {
		over, confirmed := "no", "no"
		if attr(*ev, "over") == 1 {
			over = "yes"
		}
		if attr(*ev, "confirmed") == 1 {
			confirmed = "yes"
		}
		fmt.Fprintf(w, "  kappa_eval: decision=%s reachable=%d bound=%d t=%d over_t=%s confirmed=%s\n",
			ev.Key, ev.N, attr(*ev, "bound"), attr(*ev, "t"), over, confirmed)
	} else {
		fmt.Fprintf(w, "  kappa_eval: none recorded for this node\n")
	}
	return nil
}
