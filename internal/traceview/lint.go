package traceview

import (
	"fmt"
	"io"
	"sort"

	"github.com/nectar-repro/nectar/internal/obs"
)

// Finding is one lint anomaly. A clean honest-majority run produces
// none; CI treats any finding as a failure.
type Finding struct {
	// Kind is the check that fired: idle_round, quiesce_stall,
	// nonedge_discard, chain_reject.
	Kind string
	// Epoch is the segment's epoch (-1 for static traces).
	Epoch int
	// Round is the offending engine round (0 when the finding is
	// segment-wide).
	Round  int
	Detail string
}

// Lint scans a trace for anomalies:
//
//   - idle_round: a round with zero deliveries before the segment
//     quiesced — the engine spun with nothing in flight while nodes
//     still claimed pending work.
//   - quiesce_stall: a segment that never quiesced yet ended with
//     zero-delivery rounds — some node never reported Quiescent (or the
//     run forced FullHorizon).
//   - nonedge_discard: the transport dropped non-edge payloads; honest
//     nodes only ever send edge proofs, so these indicate a misbehaving
//     sender.
//   - chain_reject: nodes rejected evidence chains (bad signatures,
//     malformed chains); expected only under active adversaries.
//
// Findings are generated in (segment, check, round) order, so output is
// deterministic for a given trace.
func Lint(events []obs.Event) []Finding {
	var out []Finding
	for _, seg := range Split(events) {
		out = append(out, lintSegment(&seg)...)
	}
	return out
}

func lintSegment(seg *Segment) []Finding {
	var out []Finding
	// Horizon of "activity expected": up to the quiesce round if the
	// segment quiesced, else up to the last round that delivered
	// anything (the idle tail past that is quiesce_stall's business).
	activeUntil := seg.Quiesce
	if activeUntil == 0 {
		for _, rs := range seg.Rounds {
			if rs.Delivered > 0 {
				activeUntil = rs.Round
			}
		}
	}
	for _, rs := range seg.Rounds {
		if rs.Delivered == 0 && rs.Round < activeUntil {
			out = append(out, Finding{Kind: "idle_round", Epoch: seg.Epoch, Round: rs.Round,
				Detail: "zero deliveries before quiescence"})
		}
	}
	if seg.Quiesce == 0 && len(seg.Rounds) > 0 {
		if last := seg.Rounds[len(seg.Rounds)-1]; last.Delivered == 0 && last.Round > activeUntil {
			out = append(out, Finding{Kind: "quiesce_stall", Epoch: seg.Epoch, Round: activeUntil + 1,
				Detail: fmt.Sprintf("no quiesce event; rounds %d..%d delivered nothing", activeUntil+1, last.Round)})
		}
	}
	for _, rs := range seg.Rounds {
		if rs.DiscardNonEdge > 0 {
			out = append(out, Finding{Kind: "nonedge_discard", Epoch: seg.Epoch, Round: rs.Round,
				Detail: fmt.Sprintf("%d non-edge payloads discarded", rs.DiscardNonEdge)})
		}
	}
	if reasons := rejectTally(seg.Events); reasons != "" {
		out = append(out, Finding{Kind: "chain_reject", Epoch: seg.Epoch,
			Detail: "evidence rejected: " + reasons})
	}
	return out
}

// rejectTally aggregates chain_reject reasons ("" when none) —
// collect-then-sort over the reason keys.
func rejectTally(events []obs.Event) string {
	m := make(map[string]int)
	for _, ev := range events {
		if ev.Type == obs.EvChainReject {
			m[ev.Key]++
		}
	}
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, m[k])
	}
	return out
}

// WriteFindings renders findings one per line, or an all-clear line.
func WriteFindings(w io.Writer, findings []Finding) {
	if len(findings) == 0 {
		fmt.Fprintln(w, "lint: no findings")
		return
	}
	for _, f := range findings {
		loc := "static"
		if f.Epoch >= 0 {
			loc = fmt.Sprintf("epoch %d", f.Epoch)
		}
		if f.Round > 0 {
			loc += fmt.Sprintf(" round %d", f.Round)
		}
		fmt.Fprintf(w, "lint: %s [%s]: %s\n", f.Kind, loc, f.Detail)
	}
}
