package traceview

import (
	"fmt"
	"io"
	"sort"

	"github.com/nectar-repro/nectar/internal/obs"
)

// Summary is the whole-trace report behind `nectar-trace summarize`:
// an event-type tally plus per-segment round tables.
type Summary struct {
	Events   int
	ByType   []TypeCount
	Segments []Segment
}

// Summarize aggregates a loaded trace.
func Summarize(events []obs.Event) *Summary {
	return &Summary{
		Events:   len(events),
		ByType:   countByType(events),
		Segments: Split(events),
	}
}

// WriteText renders the summary. Output is a pure function of the event
// slice (pinned by golden tests): fixed-width tables, sorted tallies.
func (s *Summary) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "trace: %d events\n", s.Events)
	for _, tc := range s.ByType {
		fmt.Fprintf(w, "  %-14s %6d\n", tc.Type, tc.Count)
	}
	for i := range s.Segments {
		seg := &s.Segments[i]
		fmt.Fprintln(w)
		writeSegmentHeader(w, seg)
		if len(seg.Rounds) > 0 {
			fmt.Fprintf(w, "  %5s %6s %6s %8s %8s %7s %9s %8s\n",
				"round", "recv", "msgs", "accepts", "rejects", "growth", "discard", "bytes")
			for _, rs := range seg.Rounds {
				mark := ""
				if rs.TopoSwap {
					mark = " topo_swap"
				}
				fmt.Fprintf(w, "  %5d %6d %6d %8d %8d %7d %5d/%-3d %8d%s\n",
					rs.Round, rs.Recipients, rs.Delivered, rs.Accepts, rs.Rejects,
					rs.ReachGrowths, rs.DiscardNonEdge, rs.DiscardLoss, rs.Bytes, mark)
			}
		}
		if seg.Quiesce > 0 {
			fmt.Fprintf(w, "  quiesce: after round %d -> %d\n", seg.Quiesce, seg.QuiesceTarget)
		} else {
			fmt.Fprintf(w, "  quiesce: none (ran full horizon)\n")
		}
		if len(seg.KappaEvals) > 0 {
			fmt.Fprintf(w, "  verdicts: %s\n", verdictTally(seg.KappaEvals))
		}
	}
	return nil
}

func writeSegmentHeader(w io.Writer, seg *Segment) {
	if seg.Epoch < 0 {
		fmt.Fprintf(w, "segment static")
	} else {
		fmt.Fprintf(w, "segment epoch=%d start_round=%d truth_kappa=%d", seg.Epoch, seg.StartRound, seg.Kappa)
	}
	if seg.HasVerdict {
		agree := "no"
		if seg.Agreement {
			agree = "yes"
		}
		fmt.Fprintf(w, " verdict=%s agreement=%s", seg.Decision, agree)
	}
	fmt.Fprintln(w)
}

// verdictTally renders per-decision counts of a segment's kappa_eval
// events, e.g. "NOT_PARTITIONABLE=12" — collect-then-sort over the
// decision names.
func verdictTally(evals []obs.Event) string {
	m := make(map[string]int)
	for _, ev := range evals {
		m[ev.Key]++
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, m[k])
	}
	return out
}
