// Package traceview is the consumption side of the trace layer
// (DESIGN.md §13): it loads a JSONL event stream captured by obs
// (Recorder.WriteJSONL or StreamSink) and answers the questions a
// surprising run raises — what happened per round and epoch
// (Summarize), why a given node reached its verdict (Explain), whether
// the run shows anomalies (Lint), and where two traces first diverge
// (Diff). cmd/nectar-trace is the CLI over this package.
//
// traceview sits inside the deterministic core: every report is a pure
// function of the event slice, all aggregation maps are iterated
// collect-then-sort, and no wall clock is read — identical traces
// render identical bytes, which the golden tests pin.
package traceview

import (
	"fmt"
	"os"
	"sort"

	"github.com/nectar-repro/nectar/internal/obs"
)

// Load reads a JSONL trace file.
func Load(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// Segment is one detection run's slice of the trace: everything between
// an epoch_start and the next (dynamic traces), or the whole stream for
// a static trace. Engine round numbers restart at 1 per segment, so all
// per-round aggregation lives here.
type Segment struct {
	// Epoch is the 0-based epoch index, or -1 for a static trace's single
	// segment.
	Epoch int
	// StartRound is the epoch's first global round (epoch_start.Round; 1
	// for static traces).
	StartRound int
	// Kappa is the ground-truth connectivity announced by epoch_start
	// (-1 when the trace carries none, i.e. static traces).
	Kappa int
	// Decision and Agreement mirror the epoch_verdict event ("" when the
	// segment has none).
	Decision           string
	Agreement          bool
	TruthPartitionable bool
	HasVerdict         bool
	// Rounds holds the per-round aggregates in round order.
	Rounds []RoundStat
	// Quiesce is the round at which the engine fast-forwarded (quiesce
	// event), 0 if the segment ran its horizon.
	Quiesce int
	// QuiesceTarget is the round the engine fast-forwarded to.
	QuiesceTarget int
	// KappaEvals holds the segment's verdict-provenance events in
	// emission (= ascending node) order.
	KappaEvals []obs.Event
	// Events is the segment's raw slice of the trace (aliasing the loaded
	// stream), for per-node drill-down.
	Events []obs.Event
}

// RoundStat aggregates one engine round of a segment.
type RoundStat struct {
	Round          int
	Delivered      int64 // messages delivered (sum of msg_deliver N)
	Recipients     int   // nodes that received anything
	Accepts        int64 // chain_accept events
	Rejects        int64 // chain_reject events
	ReachGrowths   int64 // reach_grow events
	DiscardNonEdge int64
	DiscardLoss    int64
	Bytes          int64 // round_end N
	TopoSwap       bool
}

// Split partitions a trace into segments. Scheduler events (unit_*)
// carry wall-clock ordering and are ignored here; everything else lands
// in the segment opened by the most recent epoch_start. kappa_eval
// events of static traces (Epoch 0, emitted after the run) land in the
// single static segment.
func Split(events []obs.Event) []Segment {
	var segs []Segment
	cur := -1 // index into segs
	ensure := func() int {
		if cur < 0 {
			segs = append(segs, Segment{Epoch: -1, StartRound: 1, Kappa: -1})
			cur = 0
		}
		return cur
	}
	for i, ev := range events {
		switch ev.Type {
		case obs.EvUnitStart, obs.EvUnitDone:
			continue
		case obs.EvEpochStart:
			segs = append(segs, Segment{
				Epoch:      ev.Epoch,
				StartRound: ev.Round,
				Kappa:      int(ev.N),
			})
			cur = len(segs) - 1
			continue
		}
		s := &segs[ensure()]
		s.Events = append(s.Events, events[i])
		switch ev.Type {
		case obs.EvEpochVerdict:
			s.Decision = ev.Key
			s.HasVerdict = true
			s.Agreement = attr(ev, "agreement") == 1
			s.TruthPartitionable = attr(ev, "truth_partitionable") == 1
		case obs.EvKappaEval:
			s.KappaEvals = append(s.KappaEvals, events[i])
		case obs.EvQuiesce:
			s.Quiesce = ev.Round
			s.QuiesceTarget = int(ev.N)
		}
		if rs := s.roundStat(ev.Round, ev.Type); rs != nil {
			switch ev.Type {
			case obs.EvMsgDeliver:
				rs.Delivered += ev.N
				rs.Recipients++
			case obs.EvChainAccept:
				rs.Accepts++
			case obs.EvChainReject:
				rs.Rejects++
			case obs.EvReachGrow:
				rs.ReachGrowths++
			case obs.EvMsgDiscard:
				rs.DiscardNonEdge += attr(ev, "nonedge")
				rs.DiscardLoss += attr(ev, "loss")
			case obs.EvRoundEnd:
				rs.Bytes = ev.N
			case obs.EvTopoSwap:
				rs.TopoSwap = true
			}
		}
	}
	return segs
}

// roundStat returns the segment's aggregate row for round r, appending
// rows as rounds open. Engine events of one segment arrive with
// non-decreasing rounds, so append-on-first-sight keeps Rounds ordered.
// Non-round event types return nil.
func (s *Segment) roundStat(r int, typ string) *RoundStat {
	switch typ {
	case obs.EvRoundStart, obs.EvRoundEnd, obs.EvMsgDeliver, obs.EvMsgDiscard,
		obs.EvChainAccept, obs.EvChainReject, obs.EvReachGrow, obs.EvQuiesce, obs.EvTopoSwap:
	default:
		return nil
	}
	if n := len(s.Rounds); n > 0 && s.Rounds[n-1].Round == r {
		return &s.Rounds[n-1]
	}
	s.Rounds = append(s.Rounds, RoundStat{Round: r})
	return &s.Rounds[len(s.Rounds)-1]
}

// attr returns the value of the named attr, 0 if absent.
func attr(ev obs.Event, key string) int64 {
	for _, a := range ev.Attrs {
		if a.K == key {
			return a.V
		}
	}
	return 0
}

// countByType tallies events per type and returns sorted (type, count)
// rows — collect-then-sort, never map order.
func countByType(events []obs.Event) []TypeCount {
	m := make(map[string]int64)
	for _, ev := range events {
		m[ev.Type]++
	}
	out := make([]TypeCount, 0, len(m))
	for typ, n := range m {
		out = append(out, TypeCount{Type: typ, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// TypeCount is one row of an event-type tally.
type TypeCount struct {
	Type  string
	Count int64
}
