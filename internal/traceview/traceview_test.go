package traceview_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	nectar "github.com/nectar-repro/nectar"
	"github.com/nectar-repro/nectar/internal/obs"
	"github.com/nectar-repro/nectar/internal/traceview"
)

var update = flag.Bool("update", false, "rewrite golden files")

// captureStatic runs a small static simulation with full tracing and
// returns the recorded events. Everything is seeded, so the event
// sequence — and every report rendered from it — is bit-stable.
func captureStatic(t *testing.T) []obs.Event {
	t.Helper()
	g, err := nectar.Harary(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	if _, err := nectar.Simulate(nectar.SimulationConfig{
		Graph: g, T: 1, Seed: 7, SchemeName: "hmac", Workers: 1, Tracer: rec,
	}); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// captureDynamic runs a two-epoch partition/heal schedule with tracing.
func captureDynamic(t *testing.T) []obs.Event {
	t.Helper()
	g, err := nectar.Harary(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := nectar.PartitionHealSchedule(g, 10, 19)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	if _, err := nectar.SimulateDynamic(nectar.DynamicConfig{
		Schedule: sched, T: 1, Seed: 7, Epochs: 2, EpochRounds: 9,
		SchemeName: "hmac", Workers: 1, Tracer: rec,
	}); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/traceview -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestSummarizeGoldenStatic(t *testing.T) {
	events := captureStatic(t)
	var buf bytes.Buffer
	if err := traceview.Summarize(events).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summarize_static.golden", buf.Bytes())
}

func TestSummarizeGoldenDynamic(t *testing.T) {
	events := captureDynamic(t)
	var buf bytes.Buffer
	if err := traceview.Summarize(events).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summarize_dynamic.golden", buf.Bytes())
}

func TestExplainGolden(t *testing.T) {
	events := captureStatic(t)
	var buf bytes.Buffer
	for i, st := range traceview.Explain(events, 3) {
		if i > 0 {
			buf.WriteByte('\n')
		}
		if err := st.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
	}
	checkGolden(t, "explain_static.golden", buf.Bytes())
}

// TestExplainEvidenceComplete checks structural invariants of the
// reconstruction for every node: the reachable set ends at n, the
// verdict round is within the run, and the kappa_eval verdict matches
// the agreed decision.
func TestExplainEvidenceComplete(t *testing.T) {
	const n = 10
	events := captureStatic(t)
	for node := 0; node < n; node++ {
		stories := traceview.Explain(events, node)
		if len(stories) != 1 {
			t.Fatalf("node %d: %d stories, want 1", node, len(stories))
		}
		st := stories[0]
		if st.ReachFinal != n {
			t.Errorf("node %d: reachable set ends at %d, want %d", node, st.ReachFinal, n)
		}
		if st.Eval == nil {
			t.Fatalf("node %d: no kappa_eval", node)
		}
		if st.Eval.Key != "NOT_PARTITIONABLE" {
			t.Errorf("node %d: decision %q", node, st.Eval.Key)
		}
		if dr := st.DeterminedRound(); dr <= 0 || dr >= n {
			t.Errorf("node %d: verdict fixed at round %d, want within (0,%d)", node, dr, n)
		}
	}
}

func TestLintCleanRun(t *testing.T) {
	if findings := traceview.Lint(captureStatic(t)); len(findings) != 0 {
		t.Fatalf("clean run produced findings: %+v", findings)
	}
	if findings := traceview.Lint(captureDynamic(t)); len(findings) != 0 {
		t.Fatalf("clean dynamic run produced findings: %+v", findings)
	}
}

func TestLintFindsAnomalies(t *testing.T) {
	// A hand-built segment: round 1 delivers, round 2 is silent, round 3
	// delivers again (idle_round), with a non-edge discard and a chain
	// reject; the run never quiesces and ends with silent rounds
	// (quiesce_stall).
	events := []obs.Event{
		{Type: obs.EvRoundStart, Round: 1},
		{Type: obs.EvMsgDeliver, Round: 1, Node: 0, N: 2},
		{Type: obs.EvChainReject, Round: 1, Node: 0, Key: "chain_sig", N: 2},
		{Type: obs.EvMsgDiscard, Round: 1, N: 3, Attrs: []obs.Attr{{K: "nonedge", V: 3}, {K: "loss", V: 0}}},
		{Type: obs.EvRoundEnd, Round: 1, N: 100},
		{Type: obs.EvRoundStart, Round: 2},
		{Type: obs.EvRoundEnd, Round: 2, N: 0},
		{Type: obs.EvRoundStart, Round: 3},
		{Type: obs.EvMsgDeliver, Round: 3, Node: 1, N: 1},
		{Type: obs.EvRoundEnd, Round: 3, N: 50},
		{Type: obs.EvRoundStart, Round: 4},
		{Type: obs.EvRoundEnd, Round: 4, N: 0},
		{Type: obs.EvRoundStart, Round: 5},
		{Type: obs.EvRoundEnd, Round: 5, N: 0},
	}
	findings := traceview.Lint(events)
	kinds := make(map[string]int)
	for _, f := range findings {
		kinds[f.Kind]++
	}
	for _, want := range []string{"idle_round", "quiesce_stall", "nonedge_discard", "chain_reject"} {
		if kinds[want] == 0 {
			t.Errorf("missing finding %q in %+v", want, findings)
		}
	}
	var buf bytes.Buffer
	traceview.WriteFindings(&buf, findings)
	checkGolden(t, "lint_findings.golden", buf.Bytes())
}

func TestDiff(t *testing.T) {
	events := captureStatic(t)
	if d := traceview.Diff(events, events); d != nil {
		t.Fatalf("identical traces diverge at %d", d.Index)
	}
	mutated := append([]obs.Event(nil), events...)
	mutated[5].N += 1
	d := traceview.Diff(events, mutated)
	if d == nil || d.Index != 5 {
		t.Fatalf("divergence = %+v, want index 5", d)
	}
	// Prefix: one side ends early.
	d = traceview.Diff(events, events[:10])
	if d == nil || d.Index != 10 || d.B != nil || d.A == nil {
		t.Fatalf("prefix divergence = %+v", d)
	}
}

// TestRoundTripThroughJSONL pins that reports are identical whether
// rendered from in-memory events or from events persisted as JSONL and
// loaded back — the CLI path.
func TestRoundTripThroughJSONL(t *testing.T) {
	events := captureStatic(t)
	var jsonl bytes.Buffer
	sink := obs.NewStreamSink(&jsonl, nil)
	for _, ev := range events {
		e := ev
		e.Ts = 0 // StreamSink re-stamps
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := obs.ReadJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := traceview.Summarize(events).WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := traceview.Summarize(loaded).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("summary differs after JSONL round trip")
	}
}
