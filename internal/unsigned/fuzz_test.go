package unsigned

import (
	"testing"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
	"github.com/nectar-repro/nectar/internal/topology"
)

// FuzzDecodeMsg runs arbitrary bytes through the unsigned-variant decoder
// and a live node's Deliver: no panics, and no fabricated edge between
// two non-neighbors of the asserter may enter the view without the
// disjoint-path evidence rule.
func FuzzDecodeMsg(f *testing.F) {
	valid := encodeMsg(claimKey{asserter: 2, edge: graph.NewEdge(2, 3)}, []ids.NodeID{2, 1})
	f.Add(valid)
	f.Add(valid[:9])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 9, 0, 0, 0, 1, 0, 0, 0, 9, 0, 2})

	g := topology.Ring(6)
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, err := decodeMsg(data, 6); err != nil {
			return
		}
		nd, err := NewNode(Config{
			N: 6, T: 1, Me: 0,
			Neighbors: append([]ids.NodeID(nil), g.Neighbors(0)...),
		})
		if err != nil {
			t.Fatal(err)
		}
		for round := 1; round <= 4; round++ {
			nd.Deliver(round, 1, data)
			nd.Deliver(round, 5, data)
		}
		// A single sender can contribute at most one disjoint path per
		// claim assertion chain; with t+1 = 2 required, no non-incident
		// edge may be recorded from one fuzzed payload replayed on two
		// channels unless both halves were directly asserted — impossible
		// for edges not incident to the senders.
		for _, e := range nd.View().Edges() {
			if e.U == 0 || e.V == 0 {
				continue // own neighborhood
			}
			// Edge may be believed only if both endpoints asserted it and
			// evidence was sufficient; sanity-check endpoint range.
			if int(e.U) >= 6 || int(e.V) >= 6 {
				t.Fatalf("out-of-range edge %v recorded", e)
			}
		}
	})
}
