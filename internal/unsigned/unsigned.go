// Package unsigned prototypes the paper's §VII conjecture: partition
// detection *without signatures* in synchronous networks, "albeit at a
// significant cost".
//
// The signature chains of NECTAR are replaced by Dolev-style
// path-annotated flooding (Dolev, FOCS'81; made practical by Bonomi et
// al., the paper's reference [12]): every copy of an edge claim carries
// the exact list of nodes it traversed, and a node believes a claim
// asserted by a non-neighbor only once it holds t+1 pairwise
// vertex-disjoint paths for it — so at least one copy traveled through
// correct nodes only. An edge {u,v} enters the local view only when BOTH
// endpoint assertions are believed, mirroring the two signatures of a
// proof of neighborhood: a single Byzantine node cannot fabricate an edge
// to a correct node, while colluding Byzantine pairs can (as the model
// allows).
//
// Guarantees (and their limits — this is a prototype of a conjecture, not
// a proved algorithm):
//
//   - Termination: fixed horizon, default n-1 rounds (paths cannot exceed
//     n-1 hops).
//   - Liveness/Sensitivity: if κ(G) ≥ 2t+1, between any two correct nodes
//     at least t+1 vertex-disjoint all-correct paths survive the Byzantine
//     nodes, so every honest claim is believed by every correct node and
//     the decision matches signed NECTAR.
//   - Safety: fabricated claims about correct nodes are never believed
//     (each lying copy's path contains a Byzantine node, and only t exist,
//     so t+1 disjoint lying paths cannot be assembled).
//   - Agreement: holds for honest content; for claims asserted *by
//     Byzantine nodes* an adversary able to deliver t+1 disjoint paths to
//     one correct node but not another can cause view divergence — the
//     gap that signatures close and the reason the paper only posits this
//     variant. Divergence can only concern Byzantine-incident edges.
//
// The cost is dramatic — every claim travels once per path rather than
// once per edge — which BenchmarkUnsignedCost quantifies against signed
// NECTAR (see EXPERIMENTS.md).
package unsigned

import (
	"fmt"

	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
	"github.com/nectar-repro/nectar/internal/nectar"
	"github.com/nectar-repro/nectar/internal/rounds"
	"github.com/nectar-repro/nectar/internal/wire"
)

// Config parameterizes an unsigned node.
type Config struct {
	// N is the total number of processes.
	N int
	// T is the Byzantine bound; acceptance needs t+1 disjoint paths.
	T int
	// Me is the local identity.
	Me ids.NodeID
	// Neighbors is Γ(Me).
	Neighbors []ids.NodeID
	// Rounds overrides the horizon (0 = n-1).
	Rounds int
	// MaxPathsPerClaim bounds the stored path set per claim (0 = 128) —
	// the practical cap keeping Dolev's worst-case O(n!) path explosion
	// at bay, following the spirit of Bonomi et al.'s optimizations.
	MaxPathsPerClaim int
	// MaxRelaysPerClaim bounds how many distinct copies of one claim a
	// node relays (0 = 64).
	MaxRelaysPerClaim int
}

// claimKey identifies "asserter says edge exists".
type claimKey struct {
	asserter ids.NodeID
	edge     graph.Edge
}

// claimState tracks evidence for one claim.
type claimState struct {
	paths    [][]ids.NodeID // minimal received paths (internal vertices only matter)
	believed bool
	relays   int
}

// Node is a correct process of the unsigned variant. It implements
// rounds.Protocol and reuses NECTAR's decision phase on the assembled
// view.
type Node struct {
	cfg      Config
	nRounds  int
	view     *graph.Graph
	claims   map[claimKey]*claimState
	believed map[graph.Edge]ids.Set // believed asserters per edge
	queue    []outMsg               // relays for the next round
	started  bool                   // round-1 assertions have been emitted
	stats    Stats
}

// Stats counts message handling outcomes.
type Stats struct {
	Believed  int // claims that reached belief
	Rejected  int // malformed or stale messages
	Discarded int // valid but redundant/capped copies
}

// outMsg is a queued relay.
type outMsg struct {
	key  claimKey
	path []ids.NodeID // path including us as last element
	skip ids.Set      // nodes already on the path (no point sending back)
}

var _ rounds.Protocol = (*Node)(nil)

// NewNode validates cfg and initializes the local view with Γ(Me).
func NewNode(cfg Config) (*Node, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("unsigned: N must be positive, got %d", cfg.N)
	}
	if cfg.T < 0 {
		return nil, fmt.Errorf("unsigned: negative T")
	}
	if int(cfg.Me) >= cfg.N {
		return nil, fmt.Errorf("unsigned: Me out of range")
	}
	if cfg.MaxPathsPerClaim == 0 {
		cfg.MaxPathsPerClaim = 128
	}
	if cfg.MaxRelaysPerClaim == 0 {
		cfg.MaxRelaysPerClaim = 64
	}
	nd := &Node{
		cfg:      cfg,
		nRounds:  cfg.Rounds,
		view:     graph.New(cfg.N),
		claims:   make(map[claimKey]*claimState),
		believed: make(map[graph.Edge]ids.Set),
	}
	if nd.nRounds == 0 {
		nd.nRounds = cfg.N - 1
	}
	seen := make(ids.Set, len(cfg.Neighbors))
	for _, nb := range cfg.Neighbors {
		if nb == cfg.Me || int(nb) >= cfg.N || seen.Has(nb) {
			return nil, fmt.Errorf("unsigned: invalid neighbor %v", nb)
		}
		seen.Add(nb)
		nd.view.AddEdge(cfg.Me, nb)
	}
	return nd, nil
}

// Rounds returns the protocol horizon.
func (nd *Node) Rounds() int { return nd.nRounds }

// Emit implements rounds.Protocol: round 1 asserts the local
// neighborhood; later rounds flush queued relays.
func (nd *Node) Emit(round int) []rounds.Send {
	nd.started = true
	var out []rounds.Send
	if round == 1 {
		for _, nb := range nd.cfg.Neighbors {
			key := claimKey{asserter: nd.cfg.Me, edge: graph.NewEdge(nd.cfg.Me, nb)}
			data := encodeMsg(key, []ids.NodeID{nd.cfg.Me})
			for _, dest := range nd.cfg.Neighbors {
				out = append(out, rounds.Send{To: dest, Data: data})
			}
		}
		return out
	}
	for _, m := range nd.queue {
		data := encodeMsg(m.key, m.path)
		for _, dest := range nd.cfg.Neighbors {
			if !m.skip.Has(dest) {
				out = append(out, rounds.Send{To: dest, Data: data})
			}
		}
	}
	nd.queue = nd.queue[:0]
	return out
}

// Quiescent implements rounds.Quiescer: nothing queued for relay means
// nothing to say until another acceptable path-annotated copy arrives.
func (nd *Node) Quiescent() bool { return nd.started && len(nd.queue) == 0 }

// Deliver implements rounds.Protocol: validate the path-annotated copy,
// update the claim's evidence, and re-evaluate belief.
func (nd *Node) Deliver(round int, from ids.NodeID, data []byte) {
	key, path, err := decodeMsg(data, nd.cfg.N)
	if err != nil {
		nd.stats.Rejected++
		return
	}
	// Path sanity: grows one hop per round (same staleness rule as
	// NECTAR's chains), starts at the asserter, ends at the delivering
	// neighbor, has no duplicates, and does not contain us.
	if len(path) != round || path[0] != key.asserter || path[len(path)-1] != from {
		nd.stats.Rejected++
		return
	}
	onPath := make(ids.Set, len(path)+1)
	for _, v := range path {
		if v == nd.cfg.Me || onPath.Has(v) {
			nd.stats.Rejected++
			return
		}
		onPath.Add(v)
	}
	// The asserter must be an endpoint of the claimed edge.
	if key.asserter != key.edge.U && key.asserter != key.edge.V {
		nd.stats.Rejected++
		return
	}

	st := nd.claims[key]
	if st == nil {
		st = &claimState{}
		nd.claims[key] = st
	}

	// Relay the extended copy (Dolev: to neighbors not already on the
	// path), within the per-claim budget. Relaying continues even after
	// local belief: downstream nodes assemble their own t+1 disjoint
	// paths independently, and cutting relays early would starve them.
	if st.relays < nd.cfg.MaxRelaysPerClaim {
		st.relays++
		extended := append(append([]ids.NodeID(nil), path...), nd.cfg.Me)
		skip := onPath.Clone()
		skip.Add(nd.cfg.Me)
		nd.queue = append(nd.queue, outMsg{key: key, path: extended, skip: skip})
	}

	if st.believed || len(st.paths) >= nd.cfg.MaxPathsPerClaim {
		nd.stats.Discarded++
		return
	}
	// Store the path's internal vertices (everything between the asserter
	// and us) for the disjointness test.
	internal := append([]ids.NodeID(nil), path[1:]...)
	st.paths = append(st.paths, internal)

	if nd.believe(key, st) {
		st.believed = true
		nd.stats.Believed++
		set := nd.believed[key.edge]
		if set == nil {
			set = ids.NewSet()
			nd.believed[key.edge] = set
		}
		set.Add(key.asserter)
		// An edge is recorded once both endpoints assert it (or we are an
		// endpoint ourselves — but then it was known from round 0).
		if set.Has(key.edge.U) && set.Has(key.edge.V) {
			nd.view.AddEdge(key.edge.U, key.edge.V)
		}
	}
}

// believe applies the acceptance rule: a direct assertion from the
// asserting neighbor itself, or t+1 pairwise vertex-disjoint paths.
func (nd *Node) believe(key claimKey, st *claimState) bool {
	for _, p := range st.paths {
		if len(p) == 0 {
			// Path was exactly [asserter]: the asserter delivered its own
			// claim over the authenticated channel.
			return true
		}
	}
	return disjointSubset(st.paths, nd.cfg.T+1)
}

// disjointSubset reports whether `need` pairwise-disjoint vertex sets can
// be chosen among paths. Exact backtracking; instances are small (need =
// t+1, path count capped).
func disjointSubset(paths [][]ids.NodeID, need int) bool {
	if need <= 0 {
		return true
	}
	// Order by length: short paths constrain least.
	ordered := append([][]ids.NodeID(nil), paths...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && len(ordered[j-1]) > len(ordered[j]); j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	used := make(ids.Set)
	var rec func(start, picked int) bool
	rec = func(start, picked int) bool {
		if picked == need {
			return true
		}
		for i := start; i <= len(ordered)-(need-picked); i++ {
			p := ordered[i]
			ok := true
			for _, v := range p {
				if used.Has(v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, v := range p {
				used.Add(v)
			}
			if rec(i+1, picked+1) {
				return true
			}
			for _, v := range p {
				used.Remove(v)
			}
		}
		return false
	}
	return rec(0, 0)
}

// Decide runs NECTAR's decision phase (Alg. 1 ll. 16-24) on the assembled
// view.
func (nd *Node) Decide() nectar.Outcome {
	r := nd.view.CountReachable(nd.cfg.Me)
	kOverT := nd.view.ConnectivityAtLeast(nd.cfg.T + 1)
	out := nectar.Outcome{Reachable: r, ConnectivityOverT: kOverT}
	if kOverT && r == nd.cfg.N {
		out.Decision = nectar.NotPartitionable
		return out
	}
	out.Decision = nectar.Partitionable
	out.Confirmed = r != nd.cfg.N
	return out
}

// View returns a copy of the assembled graph.
func (nd *Node) View() *graph.Graph { return nd.view.Clone() }

// Stats returns message-handling counters.
func (nd *Node) Stats() Stats { return nd.stats }

// ---- wire format ----

// encodeMsg serializes claim + path: edge (8B), asserter (4B), path
// (u16 count + 4B ids).
func encodeMsg(key claimKey, path []ids.NodeID) []byte {
	w := wire.NewWriter(14 + 4*len(path))
	w.NodeID(key.edge.U)
	w.NodeID(key.edge.V)
	w.NodeID(key.asserter)
	w.U16(uint16(len(path)))
	for _, v := range path {
		w.NodeID(v)
	}
	return w.Bytes()
}

func decodeMsg(data []byte, n int) (claimKey, []ids.NodeID, error) {
	r := wire.NewReader(data)
	u, v, asserter := r.NodeID(), r.NodeID(), r.NodeID()
	count := int(r.U16())
	if r.Err() != nil {
		return claimKey{}, nil, r.Err()
	}
	if count*4 > r.Remaining() {
		return claimKey{}, nil, wire.ErrTruncated
	}
	path := make([]ids.NodeID, 0, count)
	for i := 0; i < count; i++ {
		path = append(path, r.NodeID())
	}
	if err := r.Close(); err != nil {
		return claimKey{}, nil, err
	}
	if u >= v || int(v) >= n || int(asserter) >= n {
		return claimKey{}, nil, fmt.Errorf("unsigned: malformed claim")
	}
	for _, p := range path {
		if int(p) >= n {
			return claimKey{}, nil, fmt.Errorf("unsigned: path id out of range")
		}
	}
	return claimKey{asserter: asserter, edge: graph.Edge{U: u, V: v}}, path, nil
}

// BuildNodes constructs one unsigned node per vertex (simulation setup).
func BuildNodes(g *graph.Graph, t int, roundsOverride int) ([]*Node, error) {
	nodes := make([]*Node, g.N())
	for i := range nodes {
		me := ids.NodeID(i)
		nd, err := NewNode(Config{
			N:         g.N(),
			T:         t,
			Me:        me,
			Neighbors: append([]ids.NodeID(nil), g.Neighbors(me)...),
			Rounds:    roundsOverride,
		})
		if err != nil {
			return nil, err
		}
		nodes[i] = nd
	}
	return nodes, nil
}
