package unsigned

import (
	"math/rand"
	"testing"

	"github.com/nectar-repro/nectar/internal/adversary"
	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
	"github.com/nectar-repro/nectar/internal/nectar"
	"github.com/nectar-repro/nectar/internal/rounds"
	"github.com/nectar-repro/nectar/internal/sig"
	"github.com/nectar-repro/nectar/internal/topology"
)

// runUnsigned drives an all-correct (or partially wrapped) execution.
func runUnsigned(t *testing.T, g *graph.Graph, tByz int, wrap map[ids.NodeID]rounds.Protocol) ([]*Node, *rounds.Metrics) {
	t.Helper()
	nodes, err := BuildNodes(g, tByz, 0)
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]rounds.Protocol, g.N())
	for i, nd := range nodes {
		protos[i] = nd
	}
	for id, p := range wrap {
		protos[id] = p
	}
	m, err := rounds.Run(rounds.Config{Graph: g, Rounds: nodes[0].Rounds(), Seed: 5}, protos)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, m
}

func TestUnsignedDiscoversFullGraphFaultFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		t    int
	}{
		{"ring t=1 needs kappa>=3? ring has 2", topology.Ring(7), 1},
		{"complete", topology.Complete(6), 1},
		{"harary k=5", mustHarary(t, 5, 12), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nodes, _ := runUnsigned(t, tc.g, tc.t, nil)
			// Liveness needs κ ≥ t+1 correct paths even fault-free (the
			// t+1 disjoint evidence rule); check only when it holds.
			if tc.g.Connectivity() < tc.t+1 {
				t.Skip("below liveness threshold")
			}
			for i, nd := range nodes {
				if !nd.View().Equal(tc.g) {
					t.Errorf("node %d view %v != %v", i, nd.View(), tc.g)
				}
			}
		})
	}
}

func mustHarary(t *testing.T, k, n int) *graph.Graph {
	t.Helper()
	g, err := topology.Harary(k, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestUnsignedMatchesSignedDecisionOn2T1Connected(t *testing.T) {
	// On κ ≥ 2t+1 graphs the unsigned variant must reach the same
	// decision as signed NECTAR (here: NOT_PARTITIONABLE).
	g := mustHarary(t, 5, 14) // κ=5 ≥ 2·2+1
	nodes, _ := runUnsigned(t, g, 2, nil)
	for i, nd := range nodes {
		o := nd.Decide()
		if o.Decision != nectar.NotPartitionable {
			t.Errorf("node %d decided %v", i, o.Decision)
		}
		if o.Reachable != g.N() {
			t.Errorf("node %d reached %d/%d", i, o.Reachable, g.N())
		}
	}
}

func TestUnsignedDetectsPartition(t *testing.T) {
	g := graph.New(8)
	for i := 0; i < 4; i++ {
		g.AddEdge(ids.NodeID(i), ids.NodeID((i+1)%4))
		g.AddEdge(ids.NodeID(4+i), ids.NodeID(4+(i+1)%4))
	}
	nodes, _ := runUnsigned(t, g, 1, nil)
	for i, nd := range nodes {
		o := nd.Decide()
		if o.Decision != nectar.Partitionable || !o.Confirmed {
			t.Errorf("node %d: %v confirmed=%v", i, o.Decision, o.Confirmed)
		}
	}
}

func TestUnsignedByzantineCannotForgeEdgeToCorrectNode(t *testing.T) {
	// Byzantine node 0 injects a fabricated claim "7 says {0,7}" (7 is
	// correct and NOT its neighbor). No correct node may ever record the
	// edge {0,7}: every lying path passes through node 0, so t+1 = 2
	// disjoint paths cannot exist.
	g := mustHarary(t, 4, 10) // 0's neighbors: 1,2,8,9 — 7 is not one
	if g.HasEdge(0, 7) {
		t.Fatal("test premise broken: {0,7} exists")
	}
	fake := graph.NewEdge(0, 7)
	forger := &claimForger{
		inner: mustNode(t, g, 0, 1),
		inject: func(round int) []rounds.Send {
			if round < 2 {
				return nil
			}
			// A forged copy pretending node 7 asserted the edge and the
			// path went 7 -> 0 (us). Path length must equal the round, so
			// pad with more fake hops as rounds advance — all containing
			// us, which honest verification doesn't require, so craft
			// paths [7, 3, 4, ..., 0] ending at us.
			path := []ids.NodeID{7}
			pad := []ids.NodeID{3, 4, 5, 6}
			for len(path) < round-1 {
				path = append(path, pad[(len(path)-1)%len(pad)])
			}
			path = append(path, 0)
			data := encodeMsg(claimKey{asserter: 7, edge: fake}, path)
			var out []rounds.Send
			for _, nb := range g.Neighbors(0) {
				out = append(out, rounds.Send{To: nb, Data: data})
			}
			return out
		},
	}
	nodes, _ := runUnsigned(t, g, 1, map[ids.NodeID]rounds.Protocol{0: forger})
	for i := 1; i < g.N(); i++ {
		if nodes[i].View().HasEdge(0, 7) {
			t.Errorf("node %d recorded the forged edge {0,7}", i)
		}
	}
}

// claimForger behaves correctly but injects extra fabricated messages.
type claimForger struct {
	inner  *Node
	inject func(round int) []rounds.Send
}

func (f *claimForger) Emit(round int) []rounds.Send {
	return append(f.inner.Emit(round), f.inject(round)...)
}

func (f *claimForger) Deliver(round int, from ids.NodeID, data []byte) {
	f.inner.Deliver(round, from, data)
}

func mustNode(t *testing.T, g *graph.Graph, me ids.NodeID, tByz int) *Node {
	t.Helper()
	nd, err := NewNode(Config{
		N: g.N(), T: tByz, Me: me,
		Neighbors: append([]ids.NodeID(nil), g.Neighbors(me)...),
	})
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

func TestUnsignedSafetyUnderCrashByzantine(t *testing.T) {
	// κ = 5 ≥ 2t+1 with t = 2 crashed Byzantine nodes: all correct nodes
	// still discover every correct-incident edge and decide correctly.
	g := mustHarary(t, 5, 12)
	byz := ids.NewSet(3, 8)
	wrap := map[ids.NodeID]rounds.Protocol{
		3: adversary.Silent{},
		8: adversary.Silent{},
	}
	nodes, _ := runUnsigned(t, g, 2, wrap)
	for i, nd := range nodes {
		if byz.Has(ids.NodeID(i)) {
			continue
		}
		o := nd.Decide()
		// Crashed nodes never assert their own edges, so views miss
		// byz-byz edges at most; κ(view) ≥ κ(G) - missing byz edges.
		// With κ=5 and t=2 the view stays above t even so — but silent
		// nodes' edges ARE asserted by their correct endpoints... only
		// one endpoint asserts, which is not enough (both halves
		// needed). The decision must still be safe: never a wrong
		// NOT_PARTITIONABLE claim when someone is cut off.
		if o.Reachable != g.N() && o.Decision == nectar.NotPartitionable {
			t.Errorf("node %d: NOT_PARTITIONABLE with %d/%d reachable", i, o.Reachable, g.N())
		}
	}
}

func TestUnsignedRandomizedAgreementFaultFree(t *testing.T) {
	// Fault-free agreement across random κ ≥ t+1 topologies.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(5)
		g, err := topology.RandomRegularConnected(4, n+n%2, rng)
		if err != nil {
			t.Fatal(err)
		}
		nodes, _ := runUnsigned(t, g, 1, nil)
		first := nodes[0].Decide().Decision
		for i, nd := range nodes {
			if got := nd.Decide().Decision; got != first {
				t.Fatalf("trial %d: node %d decided %v, node 0 %v", trial, i, got, first)
			}
		}
	}
}

func TestUnsignedMsgValidation(t *testing.T) {
	g := topology.Ring(6)
	nd := mustNode(t, g, 0, 1)
	key := claimKey{asserter: 2, edge: graph.NewEdge(2, 3)}

	valid := encodeMsg(key, []ids.NodeID{2, 1})
	nd.Deliver(2, 1, valid)
	if nd.Stats().Rejected != 0 {
		t.Fatalf("valid message rejected")
	}
	cases := []struct {
		name  string
		data  []byte
		round int
		from  ids.NodeID
	}{
		{"wrong length for round", encodeMsg(key, []ids.NodeID{2, 1}), 3, 1},
		{"path does not start at asserter", encodeMsg(key, []ids.NodeID{4, 1}), 2, 1},
		{"path does not end at sender", encodeMsg(key, []ids.NodeID{2, 5}), 2, 1},
		{"we are on the path", encodeMsg(key, []ids.NodeID{2, 0, 1}), 3, 1},
		{"duplicate on path", encodeMsg(key, []ids.NodeID{2, 2}), 2, 2},
		{"asserter not an endpoint", encodeMsg(claimKey{asserter: 4, edge: graph.NewEdge(2, 3)}, []ids.NodeID{4, 1}), 2, 1},
		{"garbage", []byte("junk"), 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := nd.Stats().Rejected
			nd.Deliver(tc.round, tc.from, tc.data)
			if nd.Stats().Rejected != before+1 {
				t.Errorf("message not rejected")
			}
		})
	}
}

func TestDisjointSubset(t *testing.T) {
	p := func(vs ...ids.NodeID) []ids.NodeID { return vs }
	tests := []struct {
		name  string
		paths [][]ids.NodeID
		need  int
		want  bool
	}{
		{"empty need 0", nil, 0, true},
		{"empty need 1", nil, 1, false},
		{"two disjoint", [][]ids.NodeID{p(1, 2), p(3, 4)}, 2, true},
		{"overlap", [][]ids.NodeID{p(1, 2), p(2, 3)}, 2, false},
		{"pick around overlap", [][]ids.NodeID{p(1, 2), p(2, 3), p(4)}, 2, true},
		{"needs backtracking", [][]ids.NodeID{p(1), p(1, 2), p(2)}, 2, true},
		{"three of four", [][]ids.NodeID{p(1), p(2), p(1, 3), p(4)}, 3, true},
		{"empty path counts", [][]ids.NodeID{{}, p(1)}, 2, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := disjointSubset(tc.paths, tc.need); got != tc.want {
				t.Errorf("disjointSubset = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestUnsignedValidationErrors(t *testing.T) {
	if _, err := NewNode(Config{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewNode(Config{N: 4, T: -1}); err == nil {
		t.Error("negative T accepted")
	}
	if _, err := NewNode(Config{N: 4, Me: 9}); err == nil {
		t.Error("Me out of range accepted")
	}
	if _, err := NewNode(Config{N: 4, Me: 0, Neighbors: []ids.NodeID{0}}); err == nil {
		t.Error("self neighbor accepted")
	}
}

func TestUnsignedCostExceedsSigned(t *testing.T) {
	// The §VII conjecture's "significant cost": on the same topology the
	// unsigned variant must move (far) more messages than signed NECTAR.
	g := mustHarary(t, 5, 12)
	_, mUnsigned := runUnsigned(t, g, 2, nil)

	signed, err := nectar.BuildNodes(g, 2, sig.NewInsecure(g.N(), 64), 0)
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]rounds.Protocol, g.N())
	for i, nd := range signed {
		protos[i] = nd
	}
	mSigned, err := rounds.Run(rounds.Config{Graph: g, Rounds: g.N() - 1, Seed: 5}, protos)
	if err != nil {
		t.Fatal(err)
	}
	if mUnsigned.MsgsSent[0] <= 2*mSigned.MsgsSent[0] {
		t.Errorf("unsigned %d msgs vs signed %d: expected a significant blow-up",
			mUnsigned.MsgsSent[0], mSigned.MsgsSent[0])
	}
}
