package wire

import (
	"bytes"
	"testing"

	"github.com/nectar-repro/nectar/internal/ids"
)

// FuzzWire round-trips every primitive through Writer and Reader:
// whatever the Writer encodes, the Reader must decode identically and
// consume exactly (Close reports clean end-of-input). This is the
// companion of FuzzReader, which covers arbitrary (adversarial) inputs;
// together they pin both directions of the §2 decode-before-verify path.
// CI runs a short -fuzz smoke of this target so the corpus cannot rot.
func FuzzWire(f *testing.F) {
	f.Add(uint8(1), uint16(2), uint32(3), uint64(4), uint32(5), []byte("hello"), []byte{0xFF})
	f.Add(uint8(0), uint16(0), uint32(0), uint64(0), uint32(0), []byte{}, []byte{})
	f.Add(uint8(255), uint16(65535), uint32(1<<31), uint64(1)<<63, uint32(1<<24), bytes.Repeat([]byte{7}, 300), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, a uint8, b uint16, c uint32, d uint64, id uint32, blob, raw []byte) {
		w := NewWriter(0)
		w.U8(a)
		w.U16(b)
		w.U32(c)
		w.U64(d)
		w.NodeID(ids.NodeID(id))
		w.LenBytes(blob)
		w.Raw(raw)
		if w.Len() != len(w.Bytes()) {
			t.Fatalf("Len %d != len(Bytes) %d", w.Len(), len(w.Bytes()))
		}

		r := NewReader(w.Bytes())
		if got := r.U8(); got != a {
			t.Fatalf("U8 = %d, want %d", got, a)
		}
		if got := r.U16(); got != b {
			t.Fatalf("U16 = %d, want %d", got, b)
		}
		if got := r.U32(); got != c {
			t.Fatalf("U32 = %d, want %d", got, c)
		}
		if got := r.U64(); got != d {
			t.Fatalf("U64 = %d, want %d", got, d)
		}
		if got := r.NodeID(); got != ids.NodeID(id) {
			t.Fatalf("NodeID = %v, want %v", got, id)
		}
		if got := r.LenBytes(); !bytes.Equal(got, blob) {
			t.Fatalf("LenBytes = %x, want %x", got, blob)
		}
		if got := r.Raw(len(raw)); !bytes.Equal(got, raw) {
			t.Fatalf("Raw = %x, want %x", got, raw)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("Close after full read: %v", err)
		}

		// A truncated encoding must fail cleanly, never panic.
		if n := w.Len(); n > 0 {
			tr := NewReader(w.Bytes()[:n-1])
			tr.U8()
			tr.U16()
			tr.U32()
			tr.U64()
			tr.NodeID()
			tr.LenBytes()
			tr.Raw(len(raw))
			if tr.Close() == nil {
				t.Fatal("truncated input closed cleanly")
			}
		}
	})
}

// FuzzReader drives the reader through a scripted access pattern over
// arbitrary input: it must never panic, never return more bytes than the
// input holds, and stay sticky after the first error.
func FuzzReader(f *testing.F) {
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 200}, []byte{3, 3})
	f.Fuzz(func(t *testing.T, data, script []byte) {
		r := NewReader(data)
		consumed := 0
		for _, op := range script {
			if r.Err() != nil {
				break
			}
			before := r.Remaining()
			switch op % 6 {
			case 0:
				r.U8()
			case 1:
				r.U16()
			case 2:
				r.U32()
			case 3:
				r.U64()
			case 4:
				r.LenBytes()
			case 5:
				r.Raw(int(op) % 9)
			}
			if r.Err() == nil {
				consumed += before - r.Remaining()
			}
		}
		if consumed > len(data) {
			t.Fatalf("reader consumed %d of %d bytes", consumed, len(data))
		}
		if r.Err() != nil {
			// Sticky: all further reads yield zero values.
			if got := r.U64(); got != 0 {
				t.Fatalf("post-error read returned %d", got)
			}
		}
	})
}
