package wire

import "testing"

// FuzzReader drives the reader through a scripted access pattern over
// arbitrary input: it must never panic, never return more bytes than the
// input holds, and stay sticky after the first error.
func FuzzReader(f *testing.F) {
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 200}, []byte{3, 3})
	f.Fuzz(func(t *testing.T, data, script []byte) {
		r := NewReader(data)
		consumed := 0
		for _, op := range script {
			if r.Err() != nil {
				break
			}
			before := r.Remaining()
			switch op % 6 {
			case 0:
				r.U8()
			case 1:
				r.U16()
			case 2:
				r.U32()
			case 3:
				r.U64()
			case 4:
				r.LenBytes()
			case 5:
				r.Raw(int(op) % 9)
			}
			if r.Err() == nil {
				consumed += before - r.Remaining()
			}
		}
		if consumed > len(data) {
			t.Fatalf("reader consumed %d of %d bytes", consumed, len(data))
		}
		if r.Err() != nil {
			// Sticky: all further reads yield zero values.
			if got := r.U64(); got != 0 {
				t.Fatalf("post-error read returned %d", got)
			}
		}
	})
}
