package wire

import (
	"bytes"
	"testing"
)

func TestReaderOfIsAllocationFree(t *testing.T) {
	w := NewWriter(16)
	w.U32(7)
	w.U32(9)
	data := w.Bytes()
	allocs := testing.AllocsPerRun(100, func() {
		r := ReaderOf(data)
		if r.U32() != 7 || r.U32() != 9 || r.Err() != nil {
			t.Fatal("value reader decoded wrong values")
		}
	})
	if allocs != 0 {
		t.Errorf("value Reader allocates %.1f objects/op, want 0", allocs)
	}
}

func TestReaderSub(t *testing.T) {
	w := NewWriter(32)
	w.U32(0xAABBCCDD)
	w.Raw([]byte("inner"))
	w.U16(0x1234)
	r := ReaderOf(w.Bytes())
	if r.U32() != 0xAABBCCDD {
		t.Fatal("prefix decode failed")
	}
	sub := r.Sub(5)
	if got := sub.Raw(5); !bytes.Equal(got, []byte("inner")) {
		t.Errorf("sub reader read %q", got)
	}
	if err := sub.Close(); err != nil {
		t.Errorf("sub close: %v", err)
	}
	// The outer reader advanced past the sub-slice.
	if r.U16() != 0x1234 {
		t.Error("outer reader did not advance past Sub")
	}
	if err := r.Close(); err != nil {
		t.Errorf("outer close: %v", err)
	}
}

func TestReaderSubTruncated(t *testing.T) {
	r := ReaderOf([]byte{1, 2})
	sub := r.Sub(5)
	if r.Err() == nil {
		t.Error("outer reader not failed on oversized Sub")
	}
	if sub.Err() == nil {
		t.Error("sub reader of truncated input reports no error")
	}
}

func TestWriterReset(t *testing.T) {
	w := MakeWriter(8)
	w.U32(1)
	w.U32(2)
	if w.Len() != 8 {
		t.Fatalf("len %d, want 8", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("len after Reset %d, want 0", w.Len())
	}
	w.U32(3)
	r := ReaderOf(w.Bytes())
	if r.U32() != 3 || r.Close() != nil {
		t.Error("writer unusable after Reset")
	}
	// Reset keeps capacity: appending within it must not reallocate.
	w.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		w.Reset()
		w.U32(4)
		w.U32(5)
	})
	if allocs != 0 {
		t.Errorf("reset-reuse allocates %.1f objects/op, want 0", allocs)
	}
}
