// Package wire implements the deterministic, reflection-free binary
// encoding used by every protocol message. Hand-rolled encoding keeps the
// byte accounting exact — the evaluation's "data sent per node" figures
// meter precisely these bytes — and avoids any nondeterminism that
// map-order or reflection-based encoders could introduce into signatures.
//
// All integers are big-endian and fixed width. Variable-length byte
// strings are length-prefixed with a uint32.
package wire

import (
	"encoding/binary"
	"errors"

	"github.com/nectar-repro/nectar/internal/ids"
)

// ErrTruncated is returned when a decoder runs past the end of input.
var ErrTruncated = errors.New("wire: truncated input")

// ErrTrailing is returned by Reader.Close when input bytes remain.
var ErrTrailing = errors.New("wire: trailing bytes after message")

// maxLenBytes bounds length-prefixed fields to keep malformed (or
// malicious) inputs from driving huge allocations.
const maxLenBytes = 1 << 24

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// MakeWriter returns a by-value Writer with the given capacity hint. Value
// writers let hot paths encode without heap-allocating the Writer itself
// (only the byte buffer escapes, and only if the caller retains it).
func MakeWriter(capacity int) Writer {
	return Writer{buf: make([]byte, 0, capacity)}
}

// Reset truncates the Writer to empty while keeping its capacity, so one
// Writer can serve as a reusable encode arena across rounds.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the encoded bytes. The slice is owned by the Writer until
// the Writer is discarded.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// NodeID appends a node identifier (4 bytes).
func (w *Writer) NodeID(id ids.NodeID) { w.U32(uint32(id)) }

// Raw appends b with no length prefix (for fixed-size fields such as
// signatures).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// LenBytes appends a uint32 length prefix followed by b.
func (w *Writer) LenBytes(b []byte) {
	w.U32(uint32(len(b)))
	w.Raw(b)
}

// LenString appends a uint32 length prefix followed by the bytes of s.
func (w *Writer) LenString(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader decodes a message produced by Writer. It is error-sticky: after
// the first failure every accessor returns zero values and Err reports the
// failure, so call sites can decode unconditionally and check once.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// ReaderOf returns a by-value Reader over data. Value readers decode
// sub-slices of a message without any heap allocation — the header-first
// lazy decode of the NECTAR hot path peeks at message prefixes this way
// (DESIGN.md §9). The Reader does not copy data.
func ReaderOf(data []byte) Reader { return Reader{data: data} }

// Sub returns a by-value Reader over the next n bytes and advances r past
// them, allowing a framed sub-message to be decoded without copying. On
// truncation r enters its sticky error state and the returned Reader
// reports the same error.
func (r *Reader) Sub(n int) Reader {
	b := r.take(n)
	if b == nil {
		return Reader{err: r.err}
	}
	return Reader{data: b}
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Fail puts the reader into the sticky error state (first error wins).
// Decoders use it to reject structurally invalid input they detect before
// consuming it.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Close verifies the input was fully consumed and error-free.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return ErrTrailing
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.err = ErrTruncated
		return nil
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// NodeID reads a node identifier.
func (r *Reader) NodeID() ids.NodeID { return ids.NodeID(r.U32()) }

// Raw reads exactly n bytes without copying; the result aliases the input.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// LenBytes reads a uint32-length-prefixed byte string without copying.
func (r *Reader) LenBytes() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > maxLenBytes {
		r.err = ErrTruncated
		return nil
	}
	return r.take(int(n))
}

// LenString reads a uint32-length-prefixed string (one copy, as string
// construction requires).
func (r *Reader) LenString() string {
	return string(r.LenBytes())
}
