package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nectar-repro/nectar/internal/ids"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xAB)
	w.U16(0x1234)
	w.U32(0xDEADBEEF)
	w.U64(0x0102030405060708)
	w.NodeID(42)
	w.Raw([]byte{9, 9, 9})
	w.LenBytes([]byte("hello"))
	w.LenBytes(nil)

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0x1234 {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0102030405060708 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.NodeID(); got != ids.NodeID(42) {
		t.Errorf("NodeID = %v", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{9, 9, 9}) {
		t.Errorf("Raw = %v", got)
	}
	if got := r.LenBytes(); string(got) != "hello" {
		t.Errorf("LenBytes = %q", got)
	}
	if got := r.LenBytes(); len(got) != 0 {
		t.Errorf("empty LenBytes = %v", got)
	}
	if err := r.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter(8)
	w.U32(7)
	r := NewReader(w.Bytes())
	r.U64() // needs 8 bytes, only 4 available
	if r.Err() != ErrTruncated {
		t.Errorf("Err = %v, want ErrTruncated", r.Err())
	}
	// Sticky: further reads keep failing and return zero values.
	if got := r.U8(); got != 0 {
		t.Errorf("post-error U8 = %d, want 0", got)
	}
	if r.Close() != ErrTruncated {
		t.Errorf("Close = %v, want ErrTruncated", r.Close())
	}
}

func TestReaderTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.U8()
	if err := r.Close(); err != ErrTrailing {
		t.Errorf("Close = %v, want ErrTrailing", err)
	}
}

func TestReaderFailSticky(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4})
	r.Fail(ErrTrailing)
	r.Fail(ErrTruncated) // first error wins
	if r.Err() != ErrTrailing {
		t.Errorf("Err = %v, want first failure", r.Err())
	}
	if got := r.U32(); got != 0 {
		t.Errorf("U32 after Fail = %d", got)
	}
}

func TestLenBytesRejectsHugeLength(t *testing.T) {
	w := NewWriter(8)
	w.U32(1 << 30) // absurd length prefix
	r := NewReader(w.Bytes())
	if got := r.LenBytes(); got != nil || r.Err() == nil {
		t.Errorf("huge LenBytes accepted: %v, err=%v", got, r.Err())
	}
}

func TestQuickRoundTripU64(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(8)
		w.U64(v)
		r := NewReader(w.Bytes())
		return r.U64() == v && r.Close() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripLenBytes(t *testing.T) {
	f := func(a, b []byte) bool {
		w := NewWriter(len(a) + len(b) + 8)
		w.LenBytes(a)
		w.LenBytes(b)
		r := NewReader(w.Bytes())
		ga := append([]byte(nil), r.LenBytes()...)
		gb := append([]byte(nil), r.LenBytes()...)
		return bytes.Equal(ga, a) && bytes.Equal(gb, b) && r.Close() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Arbitrary byte soup must never panic the reader, only error.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		r := NewReader(buf)
		for r.Err() == nil && r.Remaining() > 0 {
			switch rng.Intn(5) {
			case 0:
				r.U8()
			case 1:
				r.U16()
			case 2:
				r.U32()
			case 3:
				r.LenBytes()
			default:
				r.Raw(rng.Intn(16))
			}
		}
	}
}
