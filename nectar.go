// Package nectar is a complete Go implementation of NECTAR — "Partition
// Detection in Byzantine Networks" (Bromberg, Decouchant, Sourisseau,
// Taïani; ICDCS 2024) — together with everything needed to reproduce the
// paper's evaluation: the MtG / MtGv2 baselines, topology generators, a
// Byzantine adversary library, a synchronous round engine, a real TCP
// transport, and an experiment harness.
//
// NECTAR solves t-Byzantine-resilient, 2t-sensitive network partition
// detection: all correct nodes decide, within bounded time and in
// agreement, whether t Byzantine nodes could possibly disconnect them
// (PARTITIONABLE) or provably cannot (NOT_PARTITIONABLE), on any graph,
// without knowing the topology in advance.
//
// Three entry points, from highest to lowest level:
//
//   - Simulate: one-call in-memory execution of NECTAR on a topology,
//     optionally with Byzantine behaviours.
//   - RunExperiment: the paper's evaluation harness — repeated seeded
//     trials, attacks, accuracy/agreement/cost statistics.
//   - Node + RunTCP: a single protocol state machine to embed in a real
//     deployment, and a TCP runner for it.
package nectar

import (
	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
	inectar "github.com/nectar-repro/nectar/internal/nectar"
	"github.com/nectar-repro/nectar/internal/sig"
)

// Core identifiers and graph types.
type (
	// NodeID identifies a process; systems of n nodes use IDs 0..n-1.
	NodeID = ids.NodeID
	// Graph is an undirected communication graph with exact
	// vertex-connectivity algorithms (Menger / max-flow based).
	Graph = graph.Graph
	// Edge is a normalized undirected edge.
	Edge = graph.Edge
)

// Protocol types re-exported from the core implementation.
type (
	// Decision is NECTAR's verdict.
	Decision = inectar.Decision
	// Outcome is a node's decision plus the `confirmed` validity output.
	Outcome = inectar.Outcome
	// Node is a correct NECTAR process (implements the round protocol).
	Node = inectar.Node
	// Config carries a node's inputs: n, t, Γ(i), neighborhood proofs,
	// and signing/verification capabilities.
	Config = inectar.Config
	// Proof is a proof of neighborhood: unforgeable unless both
	// endpoints are Byzantine.
	Proof = inectar.Proof
	// Stats counts a node's accepted/duplicate/rejected messages.
	Stats = inectar.Stats
)

// Decision values.
const (
	// Undecided means the decision phase has not run.
	Undecided = inectar.Undecided
	// NotPartitionable: no placement of t Byzantine nodes can disconnect
	// the correct nodes.
	NotPartitionable = inectar.NotPartitionable
	// Partitionable: t Byzantine nodes might be able to disconnect
	// correct nodes.
	Partitionable = inectar.Partitionable
)

// Signature substrate.
type (
	// Scheme is a signature scheme with pre-distributed keys.
	Scheme = sig.Scheme
	// Signer is a single node's signing capability.
	Signer = sig.Signer
	// Verifier checks any node's signatures.
	Verifier = sig.Verifier
)

// NewGraph returns an empty undirected graph over n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// GraphFromEdges builds a graph over n vertices with the given edges.
func GraphFromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// NewEdge returns the normalized edge {u, v}.
func NewEdge(u, v NodeID) Edge { return graph.NewEdge(u, v) }

// NewNode validates cfg and returns a correct NECTAR process.
func NewNode(cfg Config) (*Node, error) { return inectar.NewNode(cfg) }

// NewEd25519Scheme returns the stdlib Ed25519 scheme with deterministic
// per-node keys derived from seed (the production-faithful scheme).
func NewEd25519Scheme(n int, seed int64) Scheme { return sig.NewEd25519(n, seed) }

// NewHMACScheme returns the fast HMAC simulation scheme (identical
// signature sizes, ~50x faster; see DESIGN.md §4).
func NewHMACScheme(n int, seed int64) Scheme { return sig.NewHMAC(n, seed) }

// SchemeByName returns "ed25519", "hmac" or "insecure" schemes, nil for
// unknown names.
func SchemeByName(name string, n int, seed int64) Scheme { return sig.ByName(name, n, seed) }

// MakeProof builds the proof of neighborhood between two signers.
func MakeProof(a, b Signer) Proof { return inectar.MakeProof(a, b) }

// BuildProofs constructs setup-time proofs for every edge of g.
func BuildProofs(scheme Scheme, g *Graph) map[Edge]Proof {
	return inectar.BuildProofs(scheme, g)
}

// NeighborProofs extracts the proofs for edges incident to me, keyed by
// neighbor, as Config.Proofs expects.
func NeighborProofs(all map[Edge]Proof, g *Graph, me NodeID) map[NodeID]Proof {
	return inectar.NeighborProofs(all, g, me)
}

// BuildOption customizes BuildNodes' per-node Config.
type BuildOption = inectar.BuildOption

// WithParanoidVerify enables the literal Alg.-1 check order (verify
// before duplicate discard) — an ablation knob with identical decisions
// and strictly higher CPU cost.
func WithParanoidVerify() BuildOption { return inectar.WithParanoidVerify() }

// WithBloomDedup fronts every node's duplicate check with a Bloom filter
// (DESIGN.md §14) — a large-n performance knob with bit-identical results.
func WithBloomDedup() BuildOption { return inectar.WithBloomDedup() }

// BuildNodes constructs one correct NECTAR node per vertex of g
// (simulation convenience; real deployments build Nodes from local
// Configs).
func BuildNodes(g *Graph, t int, scheme Scheme, roundsOverride int, opts ...BuildOption) ([]*Node, error) {
	return inectar.BuildNodes(g, t, scheme, roundsOverride, opts...)
}

// VerifyCache memoizes signature verifications across the nodes of a run
// (DESIGN.md §9). Verification is deterministic for every provided
// scheme, so sharing verdicts is semantics-preserving; Simulate and the
// experiment harness create one per trial by default.
type VerifyCache = sig.VerifyCache

// NewVerifyCache returns an empty verification memo.
func NewVerifyCache() *VerifyCache { return sig.NewVerifyCache() }

// WithVerifyCache shares a verification memo across every node built.
func WithVerifyCache(c *VerifyCache) BuildOption { return inectar.WithVerifyCache(c) }

// DecideCache memoizes the decision phase's connectivity predicate across
// nodes with identical discovered views (DESIGN.md §9). Pass it to
// Node.DecideShared; outcomes are bit-identical with and without it.
type DecideCache = inectar.DecideCache

// NewDecideCache returns an empty decision memo.
func NewDecideCache() *DecideCache { return inectar.NewDecideCache() }
