package nectar

import (
	"math/rand"
	"testing"
)

func TestSimulateQuickstart(t *testing.T) {
	// The README quickstart: a 2-connected ring with t=1 is safe.
	res, err := Simulate(SimulationConfig{Graph: Ring(8), T: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || res.Decision != NotPartitionable || res.Confirmed {
		t.Errorf("ring verdict = (%v, agreement=%v, confirmed=%v)",
			res.Decision, res.Agreement, res.Confirmed)
	}
	if len(res.Outcomes) != 8 {
		t.Errorf("%d outcomes, want 8", len(res.Outcomes))
	}
	if res.Rounds != 7 {
		t.Errorf("rounds = %d, want n-1 = 7", res.Rounds)
	}
	for id, o := range res.Outcomes {
		if o.Reachable != 8 {
			t.Errorf("node %v reached %d/8", id, o.Reachable)
		}
	}
}

func TestSimulateStarIsPartitionable(t *testing.T) {
	res, err := Simulate(SimulationConfig{Graph: Star(6), T: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Partitionable || res.Confirmed {
		t.Errorf("star verdict = (%v, confirmed=%v), want (PARTITIONABLE, false)",
			res.Decision, res.Confirmed)
	}
}

func TestSimulateWithSplitBrainByzantine(t *testing.T) {
	// Two triangles joined only through node 0: a split-brain node 0
	// partitions them in practice; every correct node must detect
	// partitionability, and the stonewalled side confirms it.
	g := NewGraph(7)
	for _, e := range [][2]NodeID{
		{1, 2}, {2, 3}, {3, 1}, {4, 5}, {5, 6}, {6, 4}, {0, 1}, {0, 4},
	} {
		g.AddEdge(e[0], e[1])
	}
	res, err := Simulate(SimulationConfig{
		Graph: g, T: 1, Seed: 3,
		Byzantine: map[NodeID]Behavior{0: BehaviorSplitBrain},
		Blocked:   map[NodeID][]NodeID{0: {4, 5, 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Partitionable {
		t.Errorf("verdict = %v, want PARTITIONABLE", res.Decision)
	}
	if !res.Agreement {
		t.Error("NECTAR agreement must hold under split-brain")
	}
	if !res.Confirmed {
		t.Error("the stonewalled side should confirm an actual partition")
	}
}

func TestSimulateAllBehaviorsRun(t *testing.T) {
	g := Ring(8)
	g.AddEdge(0, 4) // a chord so t=2 keeps some margin
	for _, b := range []Behavior{
		BehaviorCrash, BehaviorFakeEdges, BehaviorGarbage,
		BehaviorStale, BehaviorEquivocate, BehaviorOmitOwn,
	} {
		res, err := Simulate(SimulationConfig{
			Graph: g, T: 2, Seed: 4, SchemeName: "hmac",
			Byzantine: map[NodeID]Behavior{2: b, 6: b},
		})
		if err != nil {
			t.Fatalf("behavior %s: %v", b, err)
		}
		if !res.Agreement {
			t.Errorf("behavior %s broke agreement", b)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimulationConfig{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Simulate(SimulationConfig{Graph: NewGraph(0)}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Simulate(SimulationConfig{Graph: Ring(4), T: 0,
		Byzantine: map[NodeID]Behavior{1: BehaviorCrash}}); err == nil {
		t.Error("byz count above T accepted")
	}
	if _, err := Simulate(SimulationConfig{Graph: Ring(4), T: 1,
		Byzantine: map[NodeID]Behavior{9: BehaviorCrash}}); err == nil {
		t.Error("out-of-range byz accepted")
	}
	if _, err := Simulate(SimulationConfig{Graph: Ring(4), T: 1,
		Byzantine: map[NodeID]Behavior{1: "teleport"}}); err == nil {
		t.Error("unknown behavior accepted")
	}
	if _, err := Simulate(SimulationConfig{Graph: Ring(4), T: 1,
		Byzantine: map[NodeID]Behavior{1: BehaviorSplitBrain}}); err == nil {
		t.Error("split-brain without Blocked accepted")
	}
	if _, err := Simulate(SimulationConfig{Graph: Ring(4), T: 1, SchemeName: "rsa"}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunExperimentThroughFacade(t *testing.T) {
	res, err := RunExperiment(ExperimentSpec{
		Protocol: ProtoNectar,
		Attack:   AttackSplitBrain,
		Scenario: BridgeScenario(16, 2, 6, 1.8, 2),
		T:        2,
		Trials:   3,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Mean != 1.0 {
		t.Errorf("NECTAR accuracy = %v, want 1.0", res.Accuracy.Mean)
	}
}

func TestFacadeTopologiesAndGraphOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, pts, err := Drone(10, 2, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || len(pts) != 10 {
		t.Error("drone sizes wrong")
	}
	h, err := Harary(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if h.Connectivity() != 4 {
		t.Errorf("Harary κ = %d", h.Connectivity())
	}
	if !Star(5).IsTByzPartitionable(1) {
		t.Error("star should be 1-Byz-partitionable")
	}
	e := NewEdge(3, 1)
	if e.U != 1 || e.V != 3 {
		t.Error("NewEdge not normalized")
	}
	gg := GraphFromEdges(4, []Edge{e})
	if !gg.HasEdge(1, 3) {
		t.Error("GraphFromEdges lost the edge")
	}
}

func TestFacadeNodeConstruction(t *testing.T) {
	g := Ring(5)
	scheme := NewHMACScheme(5, 1)
	all := BuildProofs(scheme, g)
	nd, err := NewNode(Config{
		N: 5, T: 1, Me: 2,
		Neighbors: g.Neighbors(2),
		Proofs:    NeighborProofs(all, g, 2),
		Signer:    scheme.SignerFor(2),
		Verifier:  scheme.Verifier(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if nd.ID() != 2 || nd.Rounds() != 4 {
		t.Errorf("node identity/rounds wrong: %v %d", nd.ID(), nd.Rounds())
	}
	if SchemeByName("ed25519", 3, 1) == nil || SchemeByName("nope", 3, 1) != nil {
		t.Error("SchemeByName wrong")
	}
}
