package nectar

import "github.com/nectar-repro/nectar/internal/obs"

// Re-exports of the observability layer (DESIGN.md §12), so callers
// outside the module-internal tree can trace simulations and publish
// metrics.
type (
	// Tracer receives structured engine events; set it on
	// SimulationConfig.Tracer or DynamicConfig.Tracer.
	Tracer = obs.Tracer
	// TraceEvent is one structured trace record.
	TraceEvent = obs.Event
	// TraceRecorder buffers events for JSONL / Chrome-trace export.
	TraceRecorder = obs.Recorder
	// MetricsRegistry holds counters, gauges, and histograms with
	// Prometheus text exposition.
	MetricsRegistry = obs.Registry
	// FastPath groups the fast-path counters embedded in
	// SimulationResult (verify-cache, lazy-discard, decide-cache).
	FastPath = obs.FastPath
)

// NewTraceRecorder returns a recorder stamping events with the
// deterministic logical clock: identical runs produce byte-identical
// JSONL.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder(nil) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }
