package nectar

import (
	"github.com/nectar-repro/nectar/internal/harness"
	"github.com/nectar-repro/nectar/internal/redteam"
)

// Red-team re-exports: worst-case attack search (DESIGN.md §8). The
// optimizers hunt for the Byzantine placement that maximizes a damage
// objective; RunRedTeam reports the searched worst case next to a random
// baseline and the paper's guarantee.

type (
	// RedTeamSpec configures one attack search.
	RedTeamSpec = harness.RedTeamSpec
	// RedTeamResult reports the searched worst case, the random-placement
	// baseline, and the applicable bound.
	RedTeamResult = harness.RedTeamResult
	// AttackObjective selects the damage the adversary maximizes.
	AttackObjective = redteam.Objective
	// AttackPlacement is a candidate Byzantine slot assignment.
	AttackPlacement = redteam.Placement
	// AttackStep is one entry of a search trace.
	AttackStep = redteam.Step
)

// Damage objectives.
const (
	ObjectiveMisclassify = redteam.ObjMisclassify
	ObjectiveDisagree    = redteam.ObjDisagree
	ObjectiveTraffic     = redteam.ObjTraffic
)

// Coordinated adaptive attacks (see BehaviorAdaptive / BehaviorPhased for
// the Simulate-level equivalents).
const (
	AttackAdaptive = harness.AttackAdaptive
	AttackPhased   = harness.AttackPhased
)

// RunRedTeam executes the search: optimizer × objective over seeded
// candidate evaluations, bit-for-bit reproducible from (Spec, Seed).
func RunRedTeam(spec RedTeamSpec) (*RedTeamResult, error) {
	return harness.RunRedTeam(spec)
}

// AttackObjectives lists the supported damage objectives.
func AttackObjectives() []AttackObjective { return redteam.Objectives() }

// AttackOptimizers lists the supported optimizer names.
func AttackOptimizers() []string { return redteam.OptimizerNames() }

// SupportedAttacks lists the attacks defined for a protocol.
func SupportedAttacks(p ProtocolKind) []AttackKind { return harness.SupportedAttacks(p) }

// Protocols lists the protocols under test.
func Protocols() []ProtocolKind { return harness.Protocols() }
