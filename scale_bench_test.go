package nectar

// Large-n scaling benchmarks (DESIGN.md §14): the tentpole trajectory
// points. BenchmarkLargeN runs full detections at n = 10³ and 10⁴ on the
// sparse families the regime targets (ring, k-ary tree, geometric
// scatter) with the slim scheme, so the numbers measure the engine —
// staging layout, dedup, decision phase — not signature arithmetic.
// BenchmarkKappaIncremental isolates the epoch ground-truth κ evaluation
// that dominates low-churn dynamic runs: from-scratch Dinic each epoch
// versus the KappaTracker's certified reuse (BENCH_scale.json pins the
// ≥5× gap).

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"github.com/nectar-repro/nectar/internal/graph"
)

// scaleFull reports whether the heavy n=10⁴ cases should run. They take
// minutes and gigabytes (a connected flood is Θ(n·m) acceptances), so
// they are opt-in via NECTAR_SCALE=1 — set by `SCALE=1 scripts/bench.sh`
// when recording BENCH_scale.json — and skipped in the CI -benchtime=1x
// sweep, which runs every benchmark it can see.
func scaleFull() bool { return os.Getenv("NECTAR_SCALE") != "" }

// largeNGraph builds one of the sparse large-n families.
func largeNGraph(b *testing.B, kind string, n int) *Graph {
	b.Helper()
	switch kind {
	case "ring":
		return Ring(n)
	case "tree":
		g, err := KaryTree(8, n)
		if err != nil {
			b.Fatal(err)
		}
		return g
	case "geom":
		// Scatter n points along a thin strip whose area grows linearly
		// with n, keeping density (and expected degree ≈ 2) constant. At
		// that density the strip fragments into large runs separated by
		// occasional gaps — the paper's drone-scatter motivation — so this
		// case measures the confirmed-partition regime at scale: every
		// component floods only its own edges and the decision phase
		// reports unreachable nodes.
		rng := rand.New(rand.NewSource(42))
		pts := make([]Point, n)
		side := 0.627 * float64(n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * 4}
		}
		return GeometricGraph(pts, 1.264)
	}
	b.Fatalf("unknown kind %q", kind)
	return nil
}

// BenchmarkLargeN: full NECTAR detections at scale, covering three
// regimes: the ring pays Θ(n) rounds (worst-case horizon), the k-ary
// tree is the connected full-flood case (every node learns all n-1
// edges within a logarithmic-diameter horizon), and the geometric
// scatter is the confirmed-partition case (per-component floods).
func BenchmarkLargeN(b *testing.B) {
	cases := []struct {
		kind string
		n    int
	}{
		{"ring", 1000}, {"tree", 1000}, {"geom", 1000},
		{"tree", 10000}, {"geom", 10000},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("%s/n=%d", tc.kind, tc.n), func(b *testing.B) {
			if tc.n > 1000 && !scaleFull() {
				b.Skip("n=10⁴ cases are opt-in: set NECTAR_SCALE=1 (see scripts/bench.sh)")
			}
			g := largeNGraph(b, tc.kind, tc.n)
			b.ReportAllocs()
			b.ResetTimer()
			var last *SimulationResult
			for i := 0; i < b.N; i++ {
				res, err := Simulate(SimulationConfig{
					Graph:      g,
					T:          1,
					Seed:       int64(i + 1),
					SchemeName: "slim",
					BloomDedup: true,
					// Under slim pseudo-signatures the verify memo costs more
					// (hashing every message) than the checks it skips.
					NoVerifyCache: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.ActiveRounds), "active-rounds")
			b.ReportMetric(float64(g.M()), "edges")
		})
	}
}

// BenchmarkKappaIncremental: per-epoch ground-truth κ under a low-churn
// edge-toggle sequence on H_{6,400} (κ = 6, t = 2 — comfortably above
// threshold, the regime where the tracker's certified interval keeps
// skipping). from-scratch recomputes Dinic κ every epoch; incremental
// serves the same verdicts through the KappaTracker.
func BenchmarkKappaIncremental(b *testing.B) {
	const n, t, epochs = 400, 2, 32
	base, err := Harary(6, n)
	if err != nil {
		b.Fatal(err)
	}
	// Precompute a deterministic low-churn schedule: one extra edge
	// toggled per epoch, so successive graphs differ by one toggle.
	rng := rand.New(rand.NewSource(7))
	gs := make([]*graph.Graph, epochs)
	cur := base.Clone()
	for e := range gs {
		u := NodeID(rng.Intn(n))
		v := NodeID((int(u) + 2 + rng.Intn(n-3)) % n)
		if cur.HasEdge(u, v) {
			cur.RemoveEdge(u, v)
		} else {
			cur.AddEdge(u, v)
		}
		gs[e] = cur.Clone()
	}

	b.Run("from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range gs {
				if k := g.Connectivity(); k <= t {
					b.Fatalf("κ=%d dropped to threshold", k)
				}
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := graph.NewKappaTracker(t, 1)
			prev := base
			for _, g := range gs {
				adds, dels := graph.EdgeDiff(prev, g)
				if bd := tr.Eval(g, adds, dels); bd.Partitionable {
					b.Fatal("verdict flipped under incremental tracking")
				}
				prev = g
			}
		}
	})
}
