#!/usr/bin/env bash
# Regenerate BENCH_baseline.json — the committed perf trajectory of the
# paper's evaluation benchmarks (Figs. 3-7) plus the hot-path
# micro-benchmarks (BenchmarkDeliver, BenchmarkVerifyChain, DESIGN.md §9).
#
# Future PRs compare against this file with:
#   go run ./cmd/benchdiff compare BENCH_baseline.json new.json
# (CI does this automatically, warn-only; see .github/workflows/ci.yml.)
#
# Usage: scripts/bench.sh            # 3 iterations per benchmark
#        BENCHTIME=10x scripts/bench.sh
#
# The large-n scaling benchmarks (DESIGN.md §14) are recorded separately —
# full detections at n=10³/10⁴ are too heavy for the default trajectory:
#   SCALE=1 scripts/bench.sh         # writes BENCH_scale.json, 1 iteration
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ -n "${SCALE:-}" ]]; then
  BENCHTIME="${BENCHTIME:-1x}"
  PATTERN='^(BenchmarkLargeN$|BenchmarkKappaIncremental$)'
  OUT="${OUT:-BENCH_scale.json}"
  TIMEOUT=90m # the connected n=10⁴ flood alone is minutes of Θ(n·m) work
  export NECTAR_SCALE=1 # unlock the heavy n=10⁴ cases
else
  BENCHTIME="${BENCHTIME:-3x}"
  PATTERN='^(BenchmarkFig[34567]|BenchmarkDeliver$|BenchmarkEmitRelay$|BenchmarkVerifyChain$)'
  OUT="${OUT:-BENCH_baseline.json}"
  TIMEOUT=20m
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run='^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" \
  -count 1 -timeout "$TIMEOUT" \
  . ./internal/nectar ./internal/sig | tee "$RAW"

go run ./cmd/benchdiff parse -note "scripts/bench.sh -benchtime $BENCHTIME" \
  < "$RAW" > "$OUT"
echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
