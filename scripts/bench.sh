#!/usr/bin/env bash
# Regenerate BENCH_baseline.json — the committed perf trajectory of the
# paper's evaluation benchmarks (Figs. 3-7) plus the hot-path
# micro-benchmarks (BenchmarkDeliver, BenchmarkVerifyChain, DESIGN.md §9).
#
# Future PRs compare against this file with:
#   go run ./cmd/benchdiff compare BENCH_baseline.json new.json
# (CI does this automatically, warn-only; see .github/workflows/ci.yml.)
#
# Usage: scripts/bench.sh            # 3 iterations per benchmark
#        BENCHTIME=10x scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
PATTERN='^(BenchmarkFig[34567]|BenchmarkDeliver$|BenchmarkEmitRelay$|BenchmarkVerifyChain$)'
OUT="${OUT:-BENCH_baseline.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run='^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count 1 \
  . ./internal/nectar ./internal/sig | tee "$RAW"

go run ./cmd/benchdiff parse -note "scripts/bench.sh -benchtime $BENCHTIME" \
  < "$RAW" > "$OUT"
echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
