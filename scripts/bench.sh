#!/usr/bin/env bash
# Regenerate BENCH_baseline.json — the committed perf trajectory of the
# paper's evaluation benchmarks (Figs. 3-7) plus the hot-path
# micro-benchmarks (BenchmarkDeliver, BenchmarkVerifyChain, DESIGN.md §9).
#
# Future PRs compare against this file with:
#   go run ./cmd/benchdiff compare BENCH_baseline.json new.json
# (CI does this automatically, warn-only; see .github/workflows/ci.yml.)
#
# Usage: scripts/bench.sh            # 3 iterations per benchmark
#        BENCHTIME=10x scripts/bench.sh
#
# The large-n scaling benchmarks (DESIGN.md §14) are recorded separately —
# full detections at n=10³/10⁴ are too heavy for the default trajectory:
#   SCALE=1 scripts/bench.sh         # writes BENCH_scale.json, 1 iteration
#
# The distributed-sweep benchmarks (DESIGN.md §15) — serial local vs
# coordinator + loopback worker fleets — are also a separate file:
#   DIST=1 scripts/bench.sh          # writes BENCH_dist.json
set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=". ./internal/nectar ./internal/sig"
if [[ -n "${SCALE:-}" ]]; then
  BENCHTIME="${BENCHTIME:-1x}"
  PATTERN='^(BenchmarkLargeN$|BenchmarkKappaIncremental$)'
  OUT="${OUT:-BENCH_scale.json}"
  TIMEOUT=90m # the connected n=10⁴ flood alone is minutes of Θ(n·m) work
  export NECTAR_SCALE=1 # unlock the heavy n=10⁴ cases
elif [[ -n "${DIST:-}" ]]; then
  BENCHTIME="${BENCHTIME:-3x}"
  PATTERN='^BenchmarkDist'
  OUT="${OUT:-BENCH_dist.json}"
  TIMEOUT=10m
  PKGS="./internal/exp/dist"
else
  BENCHTIME="${BENCHTIME:-3x}"
  PATTERN='^(BenchmarkFig[34567]|BenchmarkDeliver$|BenchmarkEmitRelay$|BenchmarkVerifyChain$)'
  OUT="${OUT:-BENCH_baseline.json}"
  TIMEOUT=20m
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# shellcheck disable=SC2086
go test -run='^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" \
  -count 1 -timeout "$TIMEOUT" \
  $PKGS | tee "$RAW"

go run ./cmd/benchdiff parse -note "scripts/bench.sh -benchtime $BENCHTIME" \
  < "$RAW" > "$OUT"
echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
