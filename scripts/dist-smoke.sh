#!/usr/bin/env bash
# dist-smoke.sh — end-to-end smoke of distributed sweep execution
# (DESIGN.md §15): launch 3 nectar-bench workers on localhost, run the
# quick mixed experiment set through a coordinator, kill one worker
# mid-run, and require the final CSVs to be byte-identical to a serial
# -jobs 1 local run. Also asserts the coordinator's metrics recorded the
# worker death and the run's completion.
#
# Usage: scripts/dist-smoke.sh [outdir]   (default: dist-smoke-out)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-dist-smoke-out}
mkdir -p "$OUT"

# Mixed plan: one static figure, one dynamic (churn) sweep, one red-team
# search — every TrialRunner kind crosses the wire.
EXPERIMENTS="fig3 churn redteam"
BASE=$((30000 + RANDOM % 20000))

go build -o "$OUT/nectar-bench" ./cmd/nectar-bench

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "--- serial local reference (-jobs 1)"
# shellcheck disable=SC2086
time "$OUT/nectar-bench" -quick -no-ascii -jobs 1 -out "$OUT/local" $EXPERIMENTS \
  > "$OUT/local.log" 2>&1

echo "--- 3 workers + coordinator, one worker killed mid-run"
addrs=""
for i in 0 1 2; do
  "$OUT/nectar-bench" -worker "127.0.0.1:$((BASE + i))" -jobs 2 \
    > "$OUT/worker$i.log" 2>&1 &
  pids+=($!)
  addrs="$addrs${addrs:+,}127.0.0.1:$((BASE + i))"
done
# Let the workers bind before the coordinator dials (it retries anyway).
sleep 0.3

# shellcheck disable=SC2086
"$OUT/nectar-bench" -quick -no-ascii -workers "$addrs" \
  -metrics-out "$OUT/metrics.txt" -out "$OUT/dist" $EXPERIMENTS \
  > "$OUT/coord.log" 2>&1 &
coord=$!
pids+=($coord)

# Kill worker 0 once the sweep is underway. The coordinator must requeue
# its in-flight units on the survivors and still finish cleanly.
sleep 1
kill "${pids[0]}" 2>/dev/null || true
echo "killed worker 0 (pid ${pids[0]})"

if ! wait "$coord"; then
  echo "coordinator failed; log:"
  cat "$OUT/coord.log"
  exit 1
fi

echo "--- CSVs must be byte-identical to the serial run"
diff -r "$OUT/local" "$OUT/dist"

echo "--- coordinator metrics must record the worker death"
grep -E '^nectar_dist_worker_down_total [1-9]' "$OUT/metrics.txt" || {
  echo "no worker death recorded in metrics:"
  grep '^nectar_dist' "$OUT/metrics.txt" || true
  exit 1
}
grep '^nectar_dist' "$OUT/metrics.txt" | sed 's/^/  /'

echo "dist-smoke: OK (CSVs bit-identical across a mid-run worker death)"
