#!/usr/bin/env bash
# node-smoke.sh — end-to-end smoke of the live observability surface
# (DESIGN.md §12): launch a small nectar-node cluster on localhost, scrape
# /healthz and /metrics while it runs, and assert the detection counters
# advance to the expected final state. Also produces a sample trace
# artifact from nectar-sim for the CI upload.
#
# Usage: scripts/node-smoke.sh [outdir]   (default: smoke-out)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-smoke-out}
mkdir -p "$OUT"

N=6        # ring of 6: κ=2 > t=1 ⇒ NOT_PARTITIONABLE everywhere
ROUNDS=5   # n-1
BASE=$((20000 + RANDOM % 20000))

go build -o "$OUT/nectar-node" ./cmd/nectar-node
go build -o "$OUT/nectar-sim" ./cmd/nectar-sim
go build -o "$OUT/nectar-trace" ./cmd/nectar-trace

# Deployment file: ring topology, one admin port per node.
{
  echo -n "{\"n\": $N, \"t\": 1, \"key_seed\": 99, \"scheme\": \"hmac\", \"round_ms\": 200, \"nodes\": ["
  for ((i = 0; i < N; i++)); do
    [ "$i" -gt 0 ] && echo -n ", "
    echo -n "{\"id\": $i, \"addr\": \"127.0.0.1:$((BASE + i))\"}"
  done
  echo -n "], \"edges\": ["
  for ((i = 0; i < N; i++)); do
    [ "$i" -gt 0 ] && echo -n ", "
    echo -n "[$i, $(((i + 1) % N))]"
  done
  echo "]}"
} > "$OUT/cluster.json"

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

# Launch with reconnect mode on and a linger window long enough to scrape
# the final state after the ~1s run. A SHARED -start-at instant keeps the
# round grids of all processes aligned (per-process -start-in would skew
# them by launch latency, losing final-round messages).
START=$(date -u -d '+2 seconds' +%Y-%m-%dT%H:%M:%SZ)
for ((i = 0; i < N; i++)); do
  "$OUT/nectar-node" -config "$OUT/cluster.json" -id "$i" -start-at "$START" \
    -admin "127.0.0.1:$((BASE + 100 + i))" -reconnect -linger 15s \
    > "$OUT/node$i.log" 2>&1 &
  pids+=($!)
done

admin() { echo "127.0.0.1:$((BASE + 100 + $1))"; }

# Every admin endpoint must come up before the run starts.
for ((i = 0; i < N; i++)); do
  for attempt in $(seq 1 50); do
    if curl -fsS "http://$(admin "$i")/healthz" > /dev/null 2>&1; then break; fi
    [ "$attempt" -eq 50 ] && { echo "FAIL: node $i admin never came up"; cat "$OUT/node$i.log"; exit 1; }
    sleep 0.1
  done
done
echo "all $N admin endpoints up"

before=$(curl -fsS "http://$(admin 0)/metrics" | awk '/^nectar_node_rounds_completed_total/ {print $2}')
before=${before:-0}

# Wait out start delay + run, then scrape the final state of every node.
sleep 4
for ((i = 0; i < N; i++)); do
  h=$(curl -fsS "http://$(admin "$i")/healthz")
  echo "node $i healthz: $h"
  echo "$h" | grep -q '"status":"ok"' || { echo "FAIL: node $i unhealthy"; exit 1; }
  # Peer-table health rides on /healthz. peer_downs can legitimately be
  # nonzero here (peers that finish first close their connections), but
  # the surface must exist and no protocol send may have been dropped.
  echo "$h" | grep -q '{"k":"peer_downs","v":' || { echo "FAIL: node $i healthz lacks peer-table detail"; exit 1; }
  echo "$h" | grep -q '{"k":"sends_dropped","v":0}' || { echo "FAIL: node $i dropped sends"; exit 1; }

  m=$(curl -fsS "http://$(admin "$i")/metrics")
  echo "$m" > "$OUT/metrics-node$i.txt"
  rounds=$(echo "$m" | awk '/^nectar_node_rounds_completed_total/ {print $2}')
  [ "${rounds:-0}" = "$ROUNDS" ] || { echo "FAIL: node $i rounds_completed=$rounds, want $ROUNDS"; exit 1; }
  echo "$m" | grep -q '^nectar_node_done 1$' || { echo "FAIL: node $i not done"; exit 1; }
  echo "$m" | grep -q '^nectar_node_decision_partitionable 0$' \
    || { echo "FAIL: node $i wrong verdict (ring-6 t=1 must be NOT_PARTITIONABLE)"; exit 1; }
  echo "$m" | grep -q "^nectar_node_reachable $N$" || { echo "FAIL: node $i reachable != $N"; exit 1; }
  sent=$(echo "$m" | awk '/^nectar_node_msgs_sent_total/ {print $2}')
  [ "${sent:-0}" -gt 0 ] || { echo "FAIL: node $i sent no messages"; exit 1; }
  curl -fsS "http://$(admin "$i")/debug/pprof/cmdline" > /dev/null \
    || { echo "FAIL: node $i pprof unreachable"; exit 1; }
done
[ "$before" -lt "$ROUNDS" ] || { echo "FAIL: rounds counter did not advance ($before -> $ROUNDS)"; exit 1; }
echo "detection counters advanced: rounds $before -> $ROUNDS on all $N nodes"

# Sample trace artifact: a deterministic engine trace from nectar-sim.
"$OUT/nectar-sim" -topo harary -n 12 -k 4 -t 1 -trace "$OUT/sample-trace.jsonl" > /dev/null
lines=$(wc -l < "$OUT/sample-trace.jsonl")
[ "$lines" -gt 0 ] || { echo "FAIL: empty trace artifact"; exit 1; }
echo "trace artifact: $OUT/sample-trace.jsonl ($lines events)"

# Trace analytics over the artifact: summarize must render (saved as an
# artifact alongside the trace) and lint must come back clean — it exits
# nonzero on any anomaly finding.
"$OUT/nectar-trace" summarize "$OUT/sample-trace.jsonl" | tee "$OUT/trace-summary.txt"
"$OUT/nectar-trace" lint "$OUT/sample-trace.jsonl" \
  || { echo "FAIL: nectar-trace lint found anomalies in a clean run"; exit 1; }

echo "node smoke OK"
