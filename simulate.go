package nectar

import (
	"fmt"
	"strings"

	"github.com/nectar-repro/nectar/internal/adversary"
	"github.com/nectar-repro/nectar/internal/graph"
	"github.com/nectar-repro/nectar/internal/ids"
	"github.com/nectar-repro/nectar/internal/obs"
	"github.com/nectar-repro/nectar/internal/rounds"
	"github.com/nectar-repro/nectar/internal/sig"
)

// Behavior selects how a Byzantine node deviates in Simulate.
type Behavior string

// Supported Byzantine behaviours (§IV "Impact of Byzantine deviations",
// §V-D attacks, plus robustness probes).
const (
	// BehaviorCrash: stays silent.
	BehaviorCrash Behavior = "crash"
	// BehaviorSplitBrain: correct towards one side, crashed towards the
	// nodes listed in SimulationConfig.Blocked.
	BehaviorSplitBrain Behavior = "splitbrain"
	// BehaviorFakeEdges: announces fictitious edges to all other
	// Byzantine nodes (colluding pairs forge joint proofs).
	BehaviorFakeEdges Behavior = "fakeedges"
	// BehaviorGarbage: floods neighbors with random bytes.
	BehaviorGarbage Behavior = "garbage"
	// BehaviorStale: delays every message one round (stale chains).
	BehaviorStale Behavior = "stale"
	// BehaviorEquivocate: announces its neighborhood only to even-ID
	// neighbors.
	BehaviorEquivocate Behavior = "equivocate"
	// BehaviorOmitOwn: hides its edges to other Byzantine nodes.
	BehaviorOmitOwn Behavior = "omitown"
	// BehaviorAdaptive: coordinated adaptive equivocation — all Byzantine
	// nodes share observations and stonewall, per round, the correct
	// neighbors they heard the least from (DESIGN.md §8).
	BehaviorAdaptive Behavior = "adaptive"
	// BehaviorPhased: composed schedule — stale replay for the first
	// third of the horizon, then coordinated adaptive equivocation.
	BehaviorPhased Behavior = "phased"
)

// KnownBehaviors lists every supported Byzantine behaviour, for flag
// validation and error messages.
func KnownBehaviors() []Behavior {
	return []Behavior{
		BehaviorCrash, BehaviorSplitBrain, BehaviorFakeEdges, BehaviorGarbage,
		BehaviorStale, BehaviorEquivocate, BehaviorOmitOwn,
		BehaviorAdaptive, BehaviorPhased,
	}
}

// Valid reports whether b names a supported behaviour.
func (b Behavior) Valid() bool {
	for _, k := range KnownBehaviors() {
		if b == k {
			return true
		}
	}
	return false
}

// Layout selects the round engine's staging data layout (DESIGN.md §14).
// Results are byte-identical for every value.
type Layout = rounds.Layout

// Router staging layouts.
const (
	// LayoutAuto picks struct-of-arrays staging at or above
	// rounds.SoAThreshold nodes.
	LayoutAuto = rounds.LayoutAuto
	// LayoutAoS forces the per-recipient-slice staging layout.
	LayoutAoS = rounds.LayoutAoS
	// LayoutSoA forces the flat struct-of-arrays staging layout.
	LayoutSoA = rounds.LayoutSoA
)

// SimulationConfig drives one in-memory NECTAR execution.
type SimulationConfig struct {
	// Graph is the communication network. Required.
	Graph *Graph
	// T is the assumed Byzantine bound handed to every node.
	T int
	// Seed makes the run reproducible.
	Seed int64
	// SchemeName selects signatures: "" = "ed25519" (Simulate favors
	// fidelity; use "hmac" for speed on large graphs).
	SchemeName string
	// Rounds overrides the n-1 round horizon (0 = default).
	Rounds int
	// Byzantine assigns behaviours to Byzantine nodes (may be empty).
	Byzantine map[NodeID]Behavior
	// Blocked lists, per split-brain Byzantine node, the destinations it
	// stonewalls. Every key must be a node assigned BehaviorSplitBrain —
	// entries for any other node are a configuration error.
	Blocked map[NodeID][]NodeID
	// FullHorizon disables the engine's quiescence early exit, forcing
	// all rounds to execute. Results are identical either way; the knob
	// exists for equivalence testing and round-complexity ablations.
	FullHorizon bool
	// NoVerifyCache disables the run-wide signature-verification memo
	// (DESIGN.md §9). Verification is deterministic, so results are
	// identical either way; the knob exists for equivalence testing and
	// crypto-cost ablations.
	NoVerifyCache bool
	// ParanoidVerify applies the literal Alg. 1 check order on every node
	// (signature verification before the duplicate discard) instead of the
	// default lazy header-first decode. Decisions are identical either
	// way; see Config.ParanoidVerify.
	ParanoidVerify bool
	// Workers caps the engine's intra-run parallelism (0 = GOMAXPROCS).
	// Results are identical for any worker count (DESIGN.md §6, §10);
	// bound it when sharing a machine with other runs.
	Workers int
	// Layout selects the round engine's staging data layout (DESIGN.md
	// §14): the zero value picks struct-of-arrays automatically at large n.
	// Results are byte-identical for every value.
	Layout rounds.Layout
	// BloomDedup fronts every node's duplicate check with a Bloom filter
	// (DESIGN.md §14). Results are byte-identical either way; the filter
	// only short-cuts exact lookups it proves unnecessary.
	BloomDedup bool
	// Tracer, when non-nil, receives per-round engine trace events
	// (DESIGN.md §12). Tracing never changes results; nil is free.
	Tracer obs.Tracer
}

// SimulationResult reports the decisions and traffic of one execution.
type SimulationResult struct {
	// Outcomes holds each correct node's decision (Byzantine nodes have
	// no entry).
	Outcomes map[NodeID]Outcome
	// Agreement reports whether all correct nodes decided identically.
	Agreement bool
	// Decision is the (agreed) decision of correct nodes; if Agreement is
	// false it is the decision of the lowest-ID correct node.
	Decision Decision
	// Confirmed reports whether any correct node confirmed an actual
	// partition (unreachable nodes).
	Confirmed bool
	// BytesSent / BytesBroadcast meter every node's traffic (unicast and
	// multicast-accounted, see DESIGN.md §5).
	BytesSent      []int64
	BytesBroadcast []int64
	// Rounds is the configured round horizon (n-1 unless overridden).
	Rounds int
	// ActiveRounds is the number of rounds the engine actually executed:
	// less than Rounds when every node went quiescent early (§IV-E), in
	// which case the remaining rounds were provably silent and skipped.
	ActiveRounds int
	// FastPath groups the run's fast-path counters (verify-cache
	// hits/misses, lazy header-only discards, decide-cache hits — see
	// DESIGN.md §9, §12). Embedded, so the fields promote: callers keep
	// reading res.VerifyCacheHits etc., and JSON output stays flat.
	obs.FastPath
}

// Simulate runs NECTAR on cfg.Graph with goroutine-per-core lockstep
// rounds and returns all correct nodes' outcomes.
func Simulate(cfg SimulationConfig) (*SimulationResult, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("nectar: SimulationConfig.Graph is required")
	}
	n := cfg.Graph.N()
	if n == 0 {
		return nil, fmt.Errorf("nectar: empty graph")
	}
	scheme, err := resolveScheme(cfg.SchemeName, n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	byz, err := checkByzantine(n, cfg.T, cfg.Byzantine, cfg.Blocked)
	if err != nil {
		return nil, err
	}

	var opts []BuildOption
	var vcache *sig.VerifyCache
	if !cfg.NoVerifyCache {
		vcache = sig.NewVerifyCache()
		opts = append(opts, WithVerifyCache(vcache))
	}
	if cfg.ParanoidVerify {
		opts = append(opts, WithParanoidVerify())
	}
	if cfg.BloomDedup {
		opts = append(opts, WithBloomDedup())
	}
	nodes, err := BuildNodes(cfg.Graph, cfg.T, scheme, cfg.Rounds, opts...)
	if err != nil {
		return nil, err
	}
	protos := make([]rounds.Protocol, n)
	for i, nd := range nodes {
		protos[i] = nd
	}
	r := cfg.Rounds
	if r == 0 {
		r = n - 1
	}
	coord := coordinatorFor(cfg.Byzantine)
	for _, b := range byz.Sorted() {
		p, err := wrapByzantine(cfg, scheme, nodes[b], b, byz, coord, r)
		if err != nil {
			return nil, err
		}
		protos[b] = p
	}
	metrics, err := rounds.Run(rounds.Config{
		Graph:       cfg.Graph,
		Rounds:      r,
		Seed:        cfg.Seed,
		FullHorizon: cfg.FullHorizon,
		Workers:     cfg.Workers,
		Layout:      cfg.Layout,
		Tracer:      cfg.Tracer,
	}, protos)
	if err != nil {
		return nil, err
	}

	res := &SimulationResult{
		Outcomes:       make(map[NodeID]Outcome, n-byz.Len()),
		Agreement:      true,
		BytesSent:      metrics.BytesSent,
		BytesBroadcast: metrics.BytesBroadcast,
		Rounds:         r,
		ActiveRounds:   metrics.ActiveRounds,
	}
	dc := NewDecideCache()
	first := true
	for i, nd := range nodes {
		id := NodeID(i)
		if byz.Has(id) {
			continue
		}
		// Verdict provenance (DESIGN.md §13): under tracing each decision
		// emits a kappa_eval event; nodes decide in ascending ID order on
		// this one goroutine, so the events are deterministic.
		o := nd.DecideTraced(dc, cfg.Tracer, 0)
		res.Outcomes[id] = o
		res.LazyDiscards += int64(nd.Stats().LazyDiscards)
		res.BloomSkips += int64(nd.Stats().BloomSkips)
		if o.Confirmed {
			res.Confirmed = true
		}
		if first {
			res.Decision = o.Decision
			first = false
		} else if o.Decision != res.Decision {
			res.Agreement = false
		}
	}
	res.VerifyCacheHits, res.VerifyCacheMisses = vcache.Stats()
	res.DecideCacheHits = dc.Hits()
	return res, nil
}

// validateSchemeName checks a scheme name ("" = the ed25519 default)
// without constructing the scheme, naming the valid schemes on error —
// misconfigurations fail before any key generation.
func validateSchemeName(name string) error {
	if name == "" {
		return nil
	}
	for _, s := range sig.Names() {
		if name == s {
			return nil
		}
	}
	return fmt.Errorf("nectar: unknown scheme %q (valid: %s)",
		name, strings.Join(sig.Names(), ", "))
}

// resolveScheme validates a scheme name ("" = "ed25519") and constructs
// the scheme.
func resolveScheme(name string, n int, seed int64) (Scheme, error) {
	if err := validateSchemeName(name); err != nil {
		return nil, err
	}
	if name == "" {
		name = "ed25519"
	}
	return sig.ByName(name, n, seed), nil
}

// checkByzantine validates a Byzantine assignment for an n-node system
// with bound t: known behaviours, in-range IDs, count within t, and
// Blocked entries only for split-brain nodes (anything else is a
// misconfigured attack scenario that would otherwise silently no-op).
func checkByzantine(n, t int, byzantine map[NodeID]Behavior, blocked map[NodeID][]NodeID) (ids.Set, error) {
	byz := ids.NewSet()
	for b, beh := range byzantine {
		if int(b) >= n {
			return nil, fmt.Errorf("nectar: Byzantine node %v out of range", b)
		}
		if !beh.Valid() {
			return nil, fmt.Errorf("nectar: node %v has unknown behavior %q (valid: %v)",
				b, beh, KnownBehaviors())
		}
		byz.Add(b)
	}
	if byz.Len() > t {
		return nil, fmt.Errorf("nectar: %d Byzantine nodes exceed T=%d", byz.Len(), t)
	}
	for b, targets := range blocked {
		if byzantine[b] != BehaviorSplitBrain {
			return nil, fmt.Errorf("nectar: Blocked entry for node %v, which has behavior %q (want %q)",
				b, byzantine[b], BehaviorSplitBrain)
		}
		for _, to := range targets {
			if int(to) >= n {
				return nil, fmt.Errorf("nectar: Blocked target %v of node %v out of range", to, b)
			}
		}
	}
	return byz, nil
}

// coordinatorFor returns one fresh shared controller when any assigned
// behaviour is coordinated (adaptive/phased), nil otherwise. All
// coordinated nodes of a run join the same controller; other Byzantine
// behaviours are simply not joined.
func coordinatorFor(byzantine map[NodeID]Behavior) *adversary.Coordinator {
	for _, beh := range byzantine {
		if beh == BehaviorAdaptive || beh == BehaviorPhased {
			return adversary.NewCoordinator()
		}
	}
	return nil
}

// wrapByzantine builds the adversary wrapper for node b. coord is the
// shared controller for coordinated behaviours (non-nil iff the run has
// any); horizon is the run's round count, which phased schedules key on.
func wrapByzantine(cfg SimulationConfig, scheme Scheme, inner *Node, b NodeID, byz ids.Set, coord *adversary.Coordinator, horizon int) (rounds.Protocol, error) {
	nbrs := cfg.Graph.Neighbors(b)
	switch cfg.Byzantine[b] {
	case BehaviorCrash:
		return adversary.Silent{}, nil
	case BehaviorSplitBrain:
		blocked := ids.NewSet(cfg.Blocked[b]...)
		if blocked.Len() == 0 {
			return nil, fmt.Errorf("nectar: split-brain node %v has no Blocked set", b)
		}
		return adversary.SplitBrain(inner, blocked), nil
	case BehaviorFakeEdges:
		var partners []Signer
		for _, other := range byz.Sorted() {
			if other != b {
				partners = append(partners, scheme.SignerFor(other))
			}
		}
		return adversary.NewNectarFakeEdges(inner, scheme.SignerFor(b), partners,
			scheme.Verifier().SigSize(), nbrs), nil
	case BehaviorGarbage:
		return adversary.NewGarbage(nbrs, cfg.Seed^int64(b), 200), nil
	case BehaviorStale:
		return adversary.NewNectarStaleReplay(inner), nil
	case BehaviorEquivocate:
		return adversary.NectarEquivocate(inner), nil
	case BehaviorOmitOwn:
		hide := make(map[graph.Edge]bool)
		for _, other := range byz.Sorted() {
			if other != b && cfg.Graph.HasEdge(b, other) {
				hide[graph.NewEdge(b, other)] = true
			}
		}
		return adversary.NectarOmitOwn(inner, scheme.Verifier().SigSize(), hide), nil
	case BehaviorAdaptive:
		return coord.Join(inner, b, nbrs, adversary.AlwaysEquivocate()), nil
	case BehaviorPhased:
		return coord.Join(inner, b, nbrs, adversary.StaleThenEquivocate(adversary.PhasedSwitchRound(horizon))), nil
	}
	return nil, fmt.Errorf("nectar: unknown behavior %q for node %v", cfg.Byzantine[b], b)
}
