package nectar

import (
	"github.com/nectar-repro/nectar/internal/rounds"
	"github.com/nectar-repro/nectar/internal/tcpnet"
)

// Real-network deployment re-exports (§V "real code on a real network
// stack"; see cmd/nectar-node for a ready-made process binary).

type (
	// TCPConfig describes one process of a TCP deployment: identity,
	// peer addresses, neighborhood, agreed start instant, and the
	// synchronous round duration ΔT.
	TCPConfig = tcpnet.Config
	// TCPStats meters a TCP node's traffic.
	TCPStats = tcpnet.Stats
	// RoundProtocol is the per-node state machine interface shared by
	// the in-memory engine and the TCP runner; *Node implements it.
	RoundProtocol = rounds.Protocol
)

// RunTCP executes a protocol state machine (typically a *Node) over real
// TCP sockets with wall-clock synchronous rounds. It blocks until the
// configured number of rounds has elapsed.
func RunTCP(cfg TCPConfig, proto RoundProtocol) (*TCPStats, error) {
	return tcpnet.Run(cfg, proto)
}
