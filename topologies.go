package nectar

import (
	"math/rand"

	"github.com/nectar-repro/nectar/internal/topology"
)

// Topology generators re-exported from the topology substrate (§V-B).

// Point is a 2D position in the drone scenario.
type Point = topology.Point

// Ring returns the cycle over n vertices (κ = 2 for n ≥ 3).
func Ring(n int) *Graph { return topology.Ring(n) }

// Line returns the path graph (κ = 1).
func Line(n int) *Graph { return topology.Line(n) }

// Star returns the star with center 0 (κ = 1) — the paper's Fig. 1b.
func Star(n int) *Graph { return topology.Star(n) }

// Complete returns K_n (κ = n-1).
func Complete(n int) *Graph { return topology.Complete(n) }

// ErdosRenyi returns G(n, p).
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	return topology.ErdosRenyi(n, p, rng)
}

// Harary returns the k-connected Harary graph H_{k,n} with the minimum
// possible number of edges — the paper's "k-regular k-connected" family.
func Harary(k, n int) (*Graph, error) { return topology.Harary(k, n) }

// RandomRegular returns a Steger-Wormald random simple k-regular graph.
func RandomRegular(k, n int, rng *rand.Rand) (*Graph, error) {
	return topology.RandomRegular(k, n, rng)
}

// RandomRegularConnected retries RandomRegular until κ = k.
func RandomRegularConnected(k, n int, rng *rand.Rand) (*Graph, error) {
	return topology.RandomRegularConnected(k, n, rng)
}

// KDiamond returns the k-connected, logarithmic-diameter k-diamond graph
// (Logarithmic Harary Graph reconstruction; DESIGN.md §4).
func KDiamond(k, n int) (*Graph, error) { return topology.KDiamond(k, n) }

// KPastedTree returns the k-connected, logarithmic-diameter k-pasted-tree
// graph (Logarithmic Harary Graph reconstruction; DESIGN.md §4).
func KPastedTree(k, n int) (*Graph, error) { return topology.KPastedTree(k, n) }

// GeneralizedWheel returns GW(c, n): a c-clique hub plus an external
// cycle with full spokes (κ = c+2) — the Byzantine worst case of Bonomi
// et al.
func GeneralizedWheel(c, n int) (*Graph, error) {
	return topology.GeneralizedWheel(c, n)
}

// MultipartiteWheel is the complete-multipartite-hub wheel variant.
func MultipartiteWheel(c, parts, n int) (*Graph, error) {
	return topology.MultipartiteWheel(c, parts, n)
}

// KaryTree returns the balanced k-ary tree over n vertices in heap order
// (κ = 1): the sparse hierarchical family of the large-n benchmarks.
func KaryTree(k, n int) (*Graph, error) { return topology.KaryTree(k, n) }

// TreeOfCliques returns a k-ary hierarchy of c-cliques joined by b-edge
// matchings (κ = min(b, c-1)) — the tunable-κ hierarchical family.
func TreeOfCliques(cliques, c, b, k int) (*Graph, error) {
	return topology.TreeOfCliques(cliques, c, b, k)
}

// Drone generates the drone scenario (§V-B, Fig. 2): two uniform scatters
// around barycenters at distance d, edges within the communication scope
// radius. Returns the graph and drone positions.
func Drone(n int, d, radius float64, rng *rand.Rand) (*Graph, []Point, error) {
	return topology.Drone(n, d, radius, rng)
}

// GeometricGraph builds the unit-disk graph over arbitrary positions.
func GeometricGraph(pts []Point, radius float64) *Graph {
	return topology.GeometricGraph(pts, radius)
}
