package nectar

// Tracing equivalence properties (DESIGN.md §12): the trace recorder is a
// pure observer — attaching it must not perturb a single output bit, and
// replaying the same scenario must reproduce the same event stream
// byte-for-byte (the events are part of the deterministic surface, like
// the results themselves).

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/nectar-repro/nectar/internal/obs"
)

// TestTraceEquivalenceProperty: across the full behavior × topology
// matrix, a traced run must be byte-identical to an untraced one, and two
// traced runs must serialize to identical JSONL.
func TestTraceEquivalenceProperty(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		for _, tc := range equivalenceCases(t, seed) {
			label := fmt.Sprintf("seed %d %s", seed, tc.name)
			ref, err := Simulate(tc.cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}

			run := func() (*SimulationResult, *TraceRecorder) {
				cfg := tc.cfg
				rec := NewTraceRecorder()
				cfg.Tracer = rec
				res, err := Simulate(cfg)
				if err != nil {
					t.Fatalf("%s (traced): %v", label, err)
				}
				return res, rec
			}
			got, rec := run()

			assertSimEquivalent(t, label, ref, got)
			if got.FastPath != ref.FastPath {
				t.Errorf("%s: fast-path counters diverge under tracing: got=%+v ref=%+v",
					label, got.FastPath, ref.FastPath)
			}
			if rec.Len() == 0 {
				t.Fatalf("%s: traced run recorded no events", label)
			}

			// The event stream itself is deterministic: structural
			// invariants hold, and a replay serializes identically.
			counts := rec.CountByType()
			if counts[obs.EvRoundStart] != ref.ActiveRounds {
				t.Errorf("%s: %d round_start events, want ActiveRounds=%d",
					label, counts[obs.EvRoundStart], ref.ActiveRounds)
			}
			if counts[obs.EvRoundStart] != counts[obs.EvRoundEnd] {
				t.Errorf("%s: %d round_start vs %d round_end",
					label, counts[obs.EvRoundStart], counts[obs.EvRoundEnd])
			}
			if ref.ActiveRounds < ref.Rounds && counts[obs.EvQuiesce] == 0 {
				t.Errorf("%s: early exit (%d/%d rounds) emitted no quiesce event",
					label, ref.ActiveRounds, ref.Rounds)
			}

			// Evidence-level provenance (DESIGN.md §13) flows whenever a
			// tracer is attached — and, per the byte-equality assertions
			// above, without perturbing results: every correct node's
			// verdict carries a kappa_eval, and the runs above always
			// accept at least some chains and grow reachable sets.
			correct := tc.cfg.Graph.N() - len(tc.cfg.Byzantine)
			if counts[obs.EvKappaEval] != correct {
				t.Errorf("%s: %d kappa_eval events, want one per correct node (%d)",
					label, counts[obs.EvKappaEval], correct)
			}
			if counts[obs.EvChainAccept] == 0 {
				t.Errorf("%s: no chain_accept events", label)
			}
			if counts[obs.EvReachGrow] == 0 {
				t.Errorf("%s: no reach_grow events", label)
			}

			_, rec2 := run()
			var a, b bytes.Buffer
			if err := rec.WriteJSONL(&a); err != nil {
				t.Fatal(err)
			}
			if err := rec2.WriteJSONL(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("%s: traced replays serialize differently", label)
			}
		}
	}
}

// TestDynamicTraceEquivalence: the epoch loop's tracing is a pure
// observer too — SimulateDynamic with a recorder attached must reproduce
// the untraced epochs and flips exactly, while emitting one
// epoch_start/epoch_verdict pair per epoch.
func TestDynamicTraceEquivalence(t *testing.T) {
	hg, err := Harary(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	sched := &EdgeSchedule{Base: hg, Events: []ScheduleEvent{
		{Round: 5, Kind: NodeLeave, Node: 3},
		{Round: 19, Kind: NodeJoin, Node: 3},
	}}
	cfg := DynamicConfig{
		Schedule:   sched,
		T:          2,
		Seed:       11,
		SchemeName: "hmac",
		Byzantine:  map[NodeID]Behavior{3: BehaviorAdaptive, 7: BehaviorPhased},
	}
	ref, err := SimulateDynamic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced := cfg
	rec := NewTraceRecorder()
	traced.Tracer = rec
	got, err := SimulateDynamic(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Epochs, ref.Epochs) {
		t.Error("epochs diverge under tracing")
	}
	if !reflect.DeepEqual(got.Flips, ref.Flips) {
		t.Error("flips diverge under tracing")
	}
	counts := rec.CountByType()
	if counts[obs.EvEpochStart] != len(ref.Epochs) || counts[obs.EvEpochVerdict] != len(ref.Epochs) {
		t.Errorf("epoch events = %d start / %d verdict, want %d each",
			counts[obs.EvEpochStart], counts[obs.EvEpochVerdict], len(ref.Epochs))
	}
	// One kappa_eval per correct, present node per epoch.
	wantEvals := 0
	for _, ep := range ref.Epochs {
		wantEvals += len(ep.Outcomes)
	}
	if counts[obs.EvKappaEval] != wantEvals {
		t.Errorf("%d kappa_eval events, want %d (one per outcome per epoch)",
			counts[obs.EvKappaEval], wantEvals)
	}
}
