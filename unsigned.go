package nectar

import (
	"github.com/nectar-repro/nectar/internal/unsigned"
)

// Signature-free variant (the paper's §VII conjecture): Dolev-style
// path-vouched dissemination replaces signature chains. See the
// internal/unsigned package documentation for the exact guarantees and
// their limits; BenchmarkUnsignedVsSigned quantifies the conjectured
// "significant cost".

type (
	// UnsignedNode is a correct process of the signature-free variant.
	UnsignedNode = unsigned.Node
	// UnsignedConfig parameterizes an UnsignedNode.
	UnsignedConfig = unsigned.Config
	// UnsignedStats counts an UnsignedNode's message outcomes.
	UnsignedStats = unsigned.Stats
)

// NewUnsignedNode validates cfg and returns a signature-free node.
func NewUnsignedNode(cfg UnsignedConfig) (*UnsignedNode, error) {
	return unsigned.NewNode(cfg)
}

// BuildUnsignedNodes constructs one signature-free node per vertex
// (simulation setup).
func BuildUnsignedNodes(g *Graph, t int, roundsOverride int) ([]*UnsignedNode, error) {
	return unsigned.BuildNodes(g, t, roundsOverride)
}
